"""Client side of the audit service: async sessions and a sync front door.

:class:`AuditClient` speaks the session protocol over asyncio streams; a
background receiver task routes unsolicited ``window`` frames (rolling
verdicts arrive whenever the server closes a window, not in lockstep with
writes) away from the request/response flow, so feeding never deadlocks
against a server blocked on its own verdict writes.

:func:`verify_remote` is the synchronous convenience the CLI uses for
``repro verify --remote``: stream a trace to a server, return the same
``{register: VerificationResult}`` mapping :func:`repro.core.api.verify_trace`
produces locally.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple, Union

from ..core.errors import RetryableServiceError, ServiceError
from ..core.operation import Operation
from ..core.result import VerificationResult
from ..core.windows import WindowPolicy
from ..io.formats import JsonlDecoder, operation_to_dict, stream_trace
from .protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    error_to_exception,
    parse_address,
    results_from_pairs,
)

__all__ = ["AuditClient", "RemoteReport", "verify_remote"]


@dataclass(frozen=True)
class RemoteReport:
    """The final report of one remote audit session, decoded.

    ``results`` matches what a local ``verify_trace`` over the same
    operations returns; ``windows`` preserves the rolling window frames that
    arrived while the stream ran (raw protocol dicts, in arrival order).
    """

    session_id: str
    k: int
    ops: int
    num_windows: int
    results: Dict[Hashable, VerificationResult]
    elapsed_s: float
    windows: Tuple[dict, ...] = field(default_factory=tuple)

    @property
    def is_k_atomic(self) -> bool:
        """True iff every register's final verdict is YES."""
        return all(bool(r) for r in self.results.values())

    @property
    def failures(self) -> Dict[Hashable, VerificationResult]:
        """The registers whose final verdict is NO."""
        return {key: r for key, r in self.results.items() if not r}


class AuditClient:
    """One audit session against a running :class:`~repro.service.AuditServer`.

    Use as an async context manager or call :meth:`close` explicitly::

        client = await AuditClient.connect("127.0.0.1:7400", k=2)
        for op in ops:
            await client.feed(op)
        report = await client.finish()

    ``on_window`` (a callable receiving each raw ``window`` frame) delivers
    rolling verdicts as they arrive; they are also collected on
    :attr:`windows`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        on_window: Optional[Callable[[dict], None]] = None,
        io_timeout: Optional[float] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._on_window = on_window
        #: Per-await cap (seconds) on writes draining and replies arriving;
        #: ``None`` waits forever (the pre-chaos behaviour).
        self.io_timeout = io_timeout
        self._frames: asyncio.Queue = asyncio.Queue()
        self._receiver = asyncio.create_task(self._receive())
        self.windows: List[dict] = []
        self.session_id: Optional[str] = None
        self.resumed = False
        self.ops_restored = 0
        self._ops_sent = 0
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        address: str,
        *,
        session: Optional[str] = None,
        k: int = 2,
        algorithm: str = "auto",
        window: Optional[Union[WindowPolicy, int]] = None,
        resume: bool = False,
        witness: bool = False,
        tier: Optional[str] = None,
        on_window: Optional[Callable[[dict], None]] = None,
        connect_timeout: Optional[float] = None,
        io_timeout: Optional[float] = None,
    ) -> "AuditClient":
        """Open a connection and complete the ``hello``/``welcome`` handshake.

        ``address`` is ``HOST:PORT`` or ``unix:PATH``; ``window`` is a
        :class:`WindowPolicy` or a plain count-window size.  ``resume=True``
        asks the server to rehydrate ``session`` from its checkpoint store.
        ``tier`` selects the session's adaptive verification ladder
        (``"screen"`` / ``"auto"``; the server rejects unknown names at the
        handshake).  ``connect_timeout`` caps the dial; ``io_timeout`` caps
        every subsequent await on the connection (both in seconds, ``None``
        = unbounded).
        """
        kind, endpoint = parse_address(address)

        async def dial():
            if kind == "unix":
                return await asyncio.open_unix_connection(
                    endpoint, limit=MAX_FRAME_BYTES
                )
            host, port = endpoint
            return await asyncio.open_connection(host, port, limit=MAX_FRAME_BYTES)

        try:
            if connect_timeout is not None:
                reader, writer = await asyncio.wait_for(dial(), connect_timeout)
            else:
                reader, writer = await dial()
        except asyncio.TimeoutError:
            raise RetryableServiceError(
                f"timed out connecting to {address} after {connect_timeout}s"
            ) from None
        client = cls(reader, writer, on_window=on_window, io_timeout=io_timeout)
        hello: dict = {"type": "hello", "k": k, "algorithm": algorithm}
        if session is not None:
            hello["session"] = session
        if resume:
            hello["resume"] = True
        if witness:
            hello["witness"] = True
        if tier is not None:
            hello["tier"] = tier
        if window is not None:
            if isinstance(window, WindowPolicy):
                hello["window"] = {
                    "mode": window.mode,
                    "size": window.size,
                    "overlap": window.overlap,
                }
            else:
                hello["window"] = {"mode": "count", "size": int(window)}
        try:
            await client._send(hello)
            welcome = await client._expect("welcome")
        except BaseException:
            # A refused handshake (duplicate session, missing checkpoint...)
            # must not leak the socket or the receiver task.
            await client.close()
            raise
        client.session_id = welcome.get("session")
        client.resumed = bool(welcome.get("resumed", False))
        client.ops_restored = int(welcome.get("ops_restored", 0))
        return client

    async def __aenter__(self) -> "AuditClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    @property
    def ops_sent(self) -> int:
        """Operations this client has streamed in this connection."""
        return self._ops_sent

    async def feed(self, op: Operation) -> None:
        """Stream one operation to the session."""
        self._writer.write(
            (json.dumps(operation_to_dict(op), sort_keys=True) + "\n").encode("utf-8")
        )
        self._ops_sent += 1
        await self._timed(self._writer.drain(), "write to server")

    async def feed_ops(self, ops: Iterable[Operation]) -> int:
        """Stream many operations; returns how many were sent."""
        count = 0
        for op in ops:
            await self.feed(op)
            count += 1
        return count

    async def checkpoint(self) -> dict:
        """Force a server-side checkpoint; returns the ``checkpointed`` frame."""
        await self._send({"type": "checkpoint"})
        return await self._expect("checkpointed")

    async def stats(self) -> dict:
        """Fetch the server's service-level statistics frame."""
        await self._send({"type": "stats"})
        return await self._expect("stats")

    async def finish(self) -> RemoteReport:
        """End the stream and decode the final report."""
        await self._send({"type": "end"})
        frame = await self._expect("report")
        report = RemoteReport(
            session_id=frame.get("session", self.session_id or ""),
            k=int(frame["k"]),
            ops=int(frame["ops"]),
            num_windows=int(frame["windows"]),
            results=results_from_pairs(frame["results"]),
            elapsed_s=float(frame.get("elapsed_s", 0.0)),
            windows=tuple(self.windows),
        )
        await self.close()
        return report

    async def close(self) -> None:
        """Drop the connection (without finishing the session)."""
        if self._closed:
            return
        self._closed = True
        self._receiver.cancel()
        try:
            await self._receiver
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------------------
    async def _timed(self, awaitable, what: str):
        """Await with the per-operation cap; timeouts are retryable."""
        if self.io_timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self.io_timeout)
        except asyncio.TimeoutError:
            raise RetryableServiceError(
                f"{what} timed out after {self.io_timeout}s"
            ) from None

    async def _send(self, frame: dict) -> None:
        self._writer.write(encode_frame(frame))
        await self._timed(self._writer.drain(), "write to server")

    async def _receive(self) -> None:
        """Route incoming frames: windows to the live feed, rest to the queue.

        Framing goes through :class:`JsonlDecoder` in mixed mode — the same
        chunk buffering (partial lines, split multi-byte UTF-8) the server
        side uses, and no fixed frame-size cap: a large ``report`` frame (a
        witness over a big register) is exactly the data the client asked
        for, so it must not lose the verdict to its own transport limit.
        Every server frame carries a ``type`` field, so the decoder yields
        them all as dicts.
        """
        decoder = JsonlDecoder(source="server", mixed=True)
        try:
            while True:
                chunk = await self._reader.read(1 << 16)
                if not chunk:
                    await self._frames.put(
                        RetryableServiceError("server closed the connection")
                    )
                    return
                for frame in decoder.feed(chunk):
                    if not isinstance(frame, dict):
                        raise ServiceError(
                            f"unexpected non-frame message from server: {frame!r}"
                        )
                    if frame.get("type") == "window":
                        self.windows.append(frame)
                        if self._on_window is not None:
                            self._on_window(frame)
                        continue
                    await self._frames.put(frame)
        except (ConnectionError, asyncio.IncompleteReadError):
            await self._frames.put(RetryableServiceError("connection to the server was lost"))
        except ServiceError as exc:
            await self._frames.put(exc)
        except Exception as exc:  # e.g. an over-limit frame: fail, don't hang
            await self._frames.put(
                RetryableServiceError(f"cannot read server frame: {exc}")
            )

    async def _expect(self, frame_type: str) -> dict:
        """Wait for the next non-window frame, requiring the given type.

        ``error`` frames raise the typed exception their ``code`` names
        (:func:`~repro.service.protocol.error_to_exception`); an unsolicited
        ``draining`` frame — the server is gracefully shutting down — raises
        :class:`~repro.core.errors.ServerDraining` carrying the resume token,
        so callers (and the self-healing client) can reconnect cleanly
        instead of mis-reading the shutdown as a protocol violation.
        """
        frame = await self._timed(self._frames.get(), f"waiting for {frame_type!r}")
        if isinstance(frame, Exception):
            raise frame
        if frame.get("type") in ("error", "draining"):
            raise error_to_exception(frame)
        if frame.get("type") != frame_type:
            raise ServiceError(
                f"expected a {frame_type!r} frame, got {frame.get('type')!r}"
            )
        return frame


def verify_remote(
    trace: Union[str, Path, Iterable[Operation]],
    k: int = 2,
    *,
    address: str,
    algorithm: str = "auto",
    window: Optional[Union[WindowPolicy, int]] = None,
    session: Optional[str] = None,
    resume: bool = False,
    witness: bool = False,
    fmt: Optional[str] = None,
    on_window: Optional[Callable[[dict], None]] = None,
    retry: Optional["RetryPolicy"] = None,
) -> RemoteReport:
    """Stream a trace to an audit server and return its final report.

    The synchronous counterpart of :class:`AuditClient` — what ``repro verify
    --remote ADDRESS`` calls.  ``trace`` is a trace file path (any format the
    registry knows; ``fmt`` forces one by name, ``None`` sniffs the
    extension) or any iterable of operations — foreign Jepsen/Porcupine
    histories are decoded client-side and travel the wire as ordinary
    protocol records.  ``report.results`` equals what
    :func:`~repro.core.api.verify_trace` returns for the same operations, by
    the incremental checkers' batch-parity guarantee.

    ``retry`` (a :class:`~repro.service.resilient.RetryPolicy`) runs the
    stream through the self-healing
    :class:`~repro.service.resilient.ResilientAuditClient` instead — it
    requires an explicit ``session`` id and rides out connection loss,
    server restarts, and drains.
    """
    if isinstance(trace, (str, Path)):
        ops: Iterable[Operation] = stream_trace(trace, fmt)
    else:
        ops = trace

    async def run() -> RemoteReport:
        if retry is not None:
            from .resilient import ResilientAuditClient

            if session is None:
                raise ServiceError("retry needs an explicit session id")
            healing = ResilientAuditClient(
                address,
                session=session,
                k=k,
                algorithm=algorithm,
                window=window,
                witness=witness,
                policy=retry,
                on_window=on_window,
            )
            async with healing:
                await healing.feed_ops(ops)
                return await healing.finish()
        client = await AuditClient.connect(
            address,
            session=session,
            k=k,
            algorithm=algorithm,
            window=window,
            resume=resume,
            witness=witness,
            on_window=on_window,
        )
        try:
            await client.feed_ops(ops)
            return await client.finish()
        finally:
            await client.close()

    return asyncio.run(run())
