"""The audit service: concurrent trace sessions over sockets, with resume.

This package turns the single-shot verification entry points into a
long-running server (the "serving" layer of the roadmap): an asyncio
:class:`AuditServer` multiplexes many concurrent JSONL trace sessions — one
:class:`~repro.engine.streaming.StreamSession` of incremental checkers per
client — over TCP and/or a unix socket, applies per-session backpressure
through bounded queues, streams rolling window verdicts back while each
trace is still arriving, and (with a :class:`CheckpointStore` attached)
persists sessions so a crash or restart resumes them with verdicts identical
to an uninterrupted run.  With ``workers=N`` the checker CPU runs on a
:class:`WorkerPool` of long-lived processes behind consistent-hash shard
routing (:class:`HashRing`) — same protocol, same verdicts, multiple cores.

Entry points:

* ``repro serve`` / :class:`AuditServer` — run the service;
* ``repro verify --remote ADDR`` / :func:`verify_remote` — stream a trace to
  a server and get back the same per-register results a local
  :func:`~repro.core.api.verify_trace` would produce;
* :class:`AuditClient` — the async client the above is built on.
"""

from .chaos import ChaosProxy, WorkerChaos
from .checkpoint import CheckpointStore
from .client import AuditClient, RemoteReport, verify_remote
from .pool import PooledAuditSession, WorkerPool
from .protocol import parse_address
from .resilient import ResilientAuditClient, RetryPolicy
from .routing import HashRing
from .server import AuditServer
from .session import AuditSession, SessionConfig

__all__ = [
    "AuditServer",
    "AuditClient",
    "AuditSession",
    "SessionConfig",
    "ChaosProxy",
    "CheckpointStore",
    "RemoteReport",
    "ResilientAuditClient",
    "RetryPolicy",
    "verify_remote",
    "parse_address",
    "WorkerPool",
    "PooledAuditSession",
    "WorkerChaos",
    "HashRing",
]
