"""The asyncio audit server: many concurrent trace sessions, one process.

Each accepted connection speaks the session protocol of
:mod:`repro.service.protocol`: a ``hello`` frame opens (or resumes) an
:class:`~repro.service.session.AuditSession`, operation records stream in as
newline-delimited JSONL, and rolling :class:`WindowReport` verdicts stream
back out the moment each window closes — the paper's live-audit posture
multiplied across sessions.

Concurrency model
-----------------
One reader ("pump") coroutine and one worker coroutine per connection, joined
by a **bounded queue**: the pump decodes socket chunks through
:class:`~repro.io.formats.JsonlDecoder` and ``await``-puts each item, so when
a session's worker falls behind the queue fills, the pump stops reading, the
kernel receive buffer fills, and TCP flow control pushes back on that client
alone — explicit per-session backpressure with no unbounded buffering and no
effect on other sessions.  Verification itself is cooperative: workers yield
to the event loop after every closed window (and periodically between
closes), so many sessions make interleaved progress in a single process.

Checkpoints
-----------
With a :class:`~repro.service.checkpoint.CheckpointStore` attached, sessions
are persisted every ``checkpoint_every`` operations and on explicit
``checkpoint`` frames; after a crash (or an orderly restart) a client
re-connects with ``resume: true`` and continues exactly where the last
checkpoint left off — the restored verdict stream is identical to an
uninterrupted run's.  A session's checkpoint is discarded once its final
report is delivered.

Worker pool
-----------
With ``workers=N`` the checker CPU moves off the event loop onto a
:class:`~repro.service.pool.WorkerPool` of ``N`` long-lived processes:
sessions become :class:`~repro.service.pool.PooledAuditSession` objects whose
per-register checkers live on pool workers, routed by consistent hashing and
restored transparently when a worker dies.  The protocol, the verdict
streams, and the checkpoint format are identical to single-process serving —
``workers`` is purely a throughput knob.

Graceful drain
--------------
:meth:`AuditServer.drain` (wired to ``SIGTERM``/``SIGINT`` by ``repro
serve``) stops accepting connections, lets every live session reach an
operation boundary, checkpoints it (when a store is attached), tells the
client via a ``draining`` frame, and returns — so a restarted server resumes
every interrupted session exactly where the drain left it.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..analysis.report import ServiceReport, SessionStats, WindowReport
from ..core.errors import (
    ReproError,
    ServerOverloaded,
    ServiceError,
    SessionIdleTimeout,
)
from ..io.formats import JsonlDecoder
from ..state import available_backends
from .checkpoint import CheckpointStore
from .pool import PooledAuditSession, WorkerPool
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_frame,
    format_address,
    results_to_pairs,
    verdict_to_dict,
)
from .session import AuditSession, SessionConfig

__all__ = ["AuditServer", "DEFAULT_QUEUE_SIZE"]

#: Default bound of each session's pump-to-worker queue, in stream items.
DEFAULT_QUEUE_SIZE = 1024

#: Worker yields the event loop at least every this many fed operations.
_YIELD_EVERY = 256

_EOF = object()
_DRAIN = object()


class AuditServer:
    """Serve many concurrent audit sessions over TCP and/or a unix socket.

    Parameters
    ----------
    host, port:
        TCP endpoint.  ``port=0`` binds an ephemeral port (see
        :attr:`tcp_port` after :meth:`start`); ``port=None`` disables TCP.
    unix_path:
        Optional unix-domain socket path to additionally (or exclusively)
        listen on.
    checkpoint_dir:
        Directory for session checkpoints; ``None`` disables checkpointing
        (``checkpoint`` frames are then refused).
    checkpoint_every:
        Automatically checkpoint each session every N fed operations
        (requires ``checkpoint_dir``).
    queue_size:
        Bound of the per-session pump queue — the backpressure knob.
    default_config:
        Session settings used for ``hello`` fields the client omits.
    max_sessions:
        After this many sessions have *completed*, :meth:`serve_forever`
        returns (used by tests and one-shot CLI runs); ``None`` serves until
        :meth:`stop`.
    workers:
        Run the checkers on a :class:`~repro.service.pool.WorkerPool` of this
        many processes (``None``/``0``: in-process checkers, the
        single-core default).
    session_idle_timeout:
        Seconds a session's stream may sit idle (no frame, no operation)
        before the server checkpoints it (when a store is attached), sends a
        retryable ``idle_timeout`` error, and closes the connection —
        reclaiming sessions whose clients stalled or vanished silently.
        ``None`` (the default) waits forever.
    max_active_sessions:
        Load-shedding bound: a ``hello`` arriving while this many sessions
        are already live is refused with a retryable ``overloaded`` error
        instead of degrading every existing stream.  ``None`` admits all.
    state_backend:
        Which :mod:`repro.state` backend persists checkpoints under
        ``checkpoint_dir`` (``json``, ``sqlite`` or ``segments``); defaults
        to ``default_config.state_backend``.  Checkpoint payloads are
        byte-identical across backends, so a deployment can switch by
        re-putting each session's blob.  Non-default backends additionally
        journal the worker pool's failover state through the same store.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = 0,
        unix_path: Optional[Union[str, Path]] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        default_config: SessionConfig = SessionConfig(),
        max_sessions: Optional[int] = None,
        workers: Optional[int] = None,
        session_idle_timeout: Optional[float] = None,
        max_active_sessions: Optional[int] = None,
        state_backend: Optional[str] = None,
    ):
        if port is None and unix_path is None:
            raise ServiceError("enable at least one endpoint (TCP port or unix path)")
        if queue_size < 1:
            raise ServiceError(f"queue_size must be >= 1, got {queue_size!r}")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ServiceError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
                )
            if checkpoint_dir is None:
                raise ServiceError("checkpoint_every requires checkpoint_dir")
        self.host = host
        self.port = port
        self.unix_path = str(unix_path) if unix_path is not None else None
        #: Which repro.state backend persists checkpoints (and, for the
        #: non-default backends, the worker pool's failover journal).
        self.state_backend = (
            state_backend
            if state_backend is not None
            else default_config.state_backend
        )
        if self.state_backend not in available_backends():
            # Validate even without a checkpoint_dir — a typo'd backend must
            # fail at construction, not serve silently without durability.
            raise ServiceError(
                f"unknown state backend {self.state_backend!r}; "
                f"expected one of {', '.join(available_backends())}"
            )
        self.store = (
            CheckpointStore(checkpoint_dir, backend=self.state_backend)
            if checkpoint_dir is not None
            else None
        )
        self.checkpoint_every = checkpoint_every
        self.queue_size = queue_size
        self.default_config = default_config
        self.max_sessions = max_sessions
        if workers is not None and workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers!r}")
        self.workers = workers or None  # 0 → in-process, same as None
        if session_idle_timeout is not None and session_idle_timeout <= 0:
            raise ServiceError(
                f"session_idle_timeout must be positive, got {session_idle_timeout!r}"
            )
        self.session_idle_timeout = session_idle_timeout
        if max_active_sessions is not None and max_active_sessions < 1:
            raise ServiceError(
                f"max_active_sessions must be >= 1, got {max_active_sessions!r}"
            )
        self.max_active_sessions = max_active_sessions
        self._pool: Optional[WorkerPool] = None
        self._worker_rows: tuple = ()

        self._servers: List[asyncio.AbstractServer] = []
        self._active: Dict[str, AuditSession] = {}
        #: Ids mid-handshake: reserved before the (awaited) checkpoint load so
        #: a concurrent hello for the same id cannot slip past the duplicate
        #: guard while this one is parked on the to_thread unpickle.
        self._opening: set = set()
        #: One entry per logical session id, in first-arrival order: the live
        #: AuditSession while its connection runs, frozen to its (small)
        #: SessionStats row when the connection ends — retaining the live
        #: object (checker buffers and all) for the server's lifetime would
        #: grow memory with every session ever served.  A resume (or a reused
        #: id) replaces the previous entry in place, O(1) per event.
        self._session_log: Dict[str, Union[AuditSession, SessionStats]] = {}
        self._conn_tasks: "set[asyncio.Task]" = set()
        #: Live per-connection pump queues, so drain() can inject its sentinel.
        self._conn_queues: Dict[asyncio.Task, asyncio.Queue] = {}
        self._draining = False
        self._completed = 0
        self._session_counter = 0
        self._started_at: Optional[float] = None
        self._stop_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the configured endpoints and begin accepting connections."""
        if self._servers:
            raise ServiceError("server already started")
        self._stop_event = asyncio.Event()
        self._started_at = time.monotonic()
        if self.workers is not None:
            # Non-default state backends also journal the pool's failover
            # state (snapshots + replay logs) instead of holding it in
            # parent memory; the default json backend keeps the historical
            # in-memory copy, whose per-window file churn it would not absorb.
            journal = (
                self.store.store
                if self.store is not None and self.state_backend != "json"
                else None
            )
            self._pool = WorkerPool(self.workers, journal=journal)
            await self._pool.start()
        if self.port is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=self.host,
                    port=self.port,
                    limit=MAX_FRAME_BYTES,
                )
            )
        if self.unix_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection, path=self.unix_path, limit=MAX_FRAME_BYTES
                )
            )

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (resolves ``port=0``), or ``None`` without TCP."""
        if self.port is None:
            return None
        for server in self._servers:
            for sock in server.sockets or ():
                if sock.family.name.startswith("AF_INET"):
                    return sock.getsockname()[1]
        return None

    @property
    def addresses(self) -> List[str]:
        """Connectable addresses, in ``HOST:PORT`` / ``unix:PATH`` form."""
        found = []
        port = self.tcp_port
        if port is not None:
            found.append(format_address("tcp", (self.host, port)))
        if self.unix_path is not None:
            found.append(format_address("unix", self.unix_path))
        return found

    async def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or the ``max_sessions`` quota is met)."""
        if self._stop_event is None:
            raise ServiceError("call start() before serve_forever()")
        await self._stop_event.wait()

    async def stop(self) -> None:
        """Close the listeners and cancel in-flight connections."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._pool is not None:
            self._worker_rows = self._pool.worker_stats()
            await self._pool.stop()
        if self.store is not None:
            self.store.close()
        if self._stop_event is not None:
            self._stop_event.set()

    async def drain(self, timeout: float = 30.0) -> None:
        """Stop accepting, checkpoint every live session, then return.

        The graceful-shutdown path (``repro serve`` wires it to ``SIGTERM``
        and ``SIGINT``): listeners close first, then every connection's
        worker receives a drain sentinel *behind* whatever its queue already
        holds, so each session stops at an operation boundary — never
        mid-window — gets checkpointed (when the server has a store), and is
        told via a ``draining`` frame before its connection closes.
        Connections still running after ``timeout`` seconds are cancelled;
        their sessions keep whatever checkpoint they last persisted.
        """
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        # The sentinel queues *behind* in-flight items (puts block on full
        # queues until the draining worker makes room), so every already
        # received operation is still fed and checkpointed.
        if self._conn_queues:
            await asyncio.gather(
                *(queue.put(_DRAIN) for queue in list(self._conn_queues.values())),
                return_exceptions=True,
            )
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._stop_event is not None:
            self._stop_event.set()

    def service_report(self) -> ServiceReport:
        """Service-level statistics over every session this run has seen."""
        uptime = (
            time.monotonic() - self._started_at if self._started_at is not None else 0.0
        )
        if self._pool is not None:
            rows = self._pool.worker_stats()
            if rows:  # after pool.stop() keep the last live snapshot
                self._worker_rows = rows
        return ServiceReport(
            sessions=tuple(
                entry.stats() if isinstance(entry, AuditSession) else entry
                for entry in self._session_log.values()
            ),
            uptime_s=uptime,
            workers=self._worker_rows,
        )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        session: Optional[AuditSession] = None
        try:
            if not self._draining:
                session = await self._run_session(reader, writer)
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass  # client vanished; any checkpoint stays for resume
        finally:
            self._conn_tasks.discard(task)
            self._conn_queues.pop(task, None)
            if session is not None:
                self._active.pop(session.session_id, None)
                if self._session_log.get(session.session_id) is session:
                    # Frozen rows of unfinished sessions read "detached":
                    # resumable, but nothing is streaming any more.
                    self._session_log[session.session_id] = replace(
                        session.stats(), connected=False
                    )
                try:
                    # Pooled sessions hold worker-side checker state; an
                    # abandoned (unfinished) stream must release it — any
                    # resume rebuilds from the checkpoint store.
                    await session.aclose()
                except (ReproError, asyncio.CancelledError):
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _run_session(self, reader, writer) -> Optional[AuditSession]:
        peer = writer.get_extra_info("peername") or writer.get_extra_info("sockname")
        decoder = JsonlDecoder(source=f"session@{peer}", mixed=True)
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_size)
        self._conn_queues[asyncio.current_task()] = queue

        # --- handshake, before any operation is decoded --------------------
        # The hello line is read directly (not through the pump) so that a
        # resumed session completes Checker.restore — which advances the
        # op-id counter past every restored id — before the decoder mints an
        # id for any pipelined operation record.  Decoding ops first would
        # let fresh auto-ids collide with restored ones (identity is
        # id-based), silently corrupting op-keyed state.
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            return None
        if not line:
            return None
        try:
            first = decode_frame(line)
        except ServiceError as exc:
            await self._send_error(writer, exc)
            return None
        if first.get("type") != "hello":
            await self._send_error(writer, "the first frame must be 'hello'")
            return None
        try:
            session = await self._open_session(first)
        except ReproError as exc:
            await self._send_error(writer, exc)
            return None
        want_witness = bool(first.get("witness", False))
        try:
            await self._send(
                writer,
                {
                    "type": "welcome",
                    "session": session.session_id,
                    "resumed": session.resumed,
                    "ops_restored": session.ops_fed,
                    "k": session.config.k,
                },
            )
        except ConnectionError:
            # The session exists from here on: it must reach the caller even
            # when the client vanishes, or cleanup never runs and the id
            # stays "already connected" forever.
            return session
        if session.resumed and session.window_log:
            # Re-deliver every window verdict the checkpoint covers: the
            # previous connection may have died with frames in flight, and
            # replay resumes *after* the checkpoint so it cannot re-close
            # them.  Clients deduplicate by window index.
            try:
                for frame in session.window_log:
                    await self._send(writer, frame)
            except ConnectionError:
                return session

        async def pump() -> None:
            try:
                while True:
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        for tail in decoder.flush():
                            await queue.put(tail)
                        await queue.put(_EOF)
                        return
                    for item in decoder.feed(chunk):
                        await queue.put(item)
                    if decoder.pending_bytes > MAX_FRAME_BYTES:
                        # A record with no newline in sight: without this cap
                        # the partial-line buffer (which the bounded queue
                        # cannot see) would grow with whatever the peer sends.
                        raise ServiceError(
                            f"frame exceeds {MAX_FRAME_BYTES} bytes without a "
                            "newline; closing the session"
                        )
            except ReproError as exc:  # malformed op/frame: surface in-band
                await queue.put(exc)
            except ConnectionError:
                await queue.put(_EOF)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # e.g. invalid UTF-8: fail, never hang
                await queue.put(ServiceError(f"cannot decode stream: {exc}"))

        pump_task = asyncio.create_task(pump())
        try:
            # --- stream ----------------------------------------------------
            since_yield = 0
            while True:
                if self.session_idle_timeout is not None:
                    try:
                        item = await asyncio.wait_for(
                            queue.get(), self.session_idle_timeout
                        )
                    except asyncio.TimeoutError:
                        # Idle watchdog: the client went quiet mid-stream.
                        # Persist what we have (so a resume loses nothing),
                        # tell the client why, and reclaim the connection.
                        if self.store is not None and not session.finished:
                            try:
                                await self._save_checkpoint(session)
                            except ServiceError:
                                pass
                        await self._send_error(
                            writer,
                            SessionIdleTimeout(
                                "session idle for "
                                f"{self.session_idle_timeout}s; closing"
                                + (
                                    " (checkpointed, resume to continue)"
                                    if self.store is not None
                                    else ""
                                )
                            ),
                            session,
                        )
                        return session
                else:
                    item = await queue.get()
                if item is _EOF:
                    # Abrupt disconnect: keep the session's checkpoint (if
                    # any) so the client can resume; drop the live state.
                    return session
                if item is _DRAIN:
                    await self._drain_session(session, writer)
                    return session
                if isinstance(item, Exception):
                    await self._send_error(writer, item, session)
                    return session
                if isinstance(item, dict):
                    if await self._handle_control(item, session, writer, want_witness):
                        return session
                    continue
                try:
                    report = await session.afeed(item)
                except ReproError as exc:
                    await self._send_error(writer, exc, session)
                    return session
                since_yield += 1
                if report is not None:
                    await self._send_window(writer, session, report)
                    since_yield = 0
                elif since_yield >= _YIELD_EVERY:
                    await asyncio.sleep(0)  # share the loop on quiet stretches
                    since_yield = 0
                if (
                    self.checkpoint_every is not None
                    and session.ops_fed % self.checkpoint_every == 0
                ):
                    try:
                        await self._save_checkpoint(session)
                    except ServiceError as exc:  # e.g. checkpoint disk full
                        await self._send_error(writer, exc, session)
                        return session
        except ConnectionError:
            # Writing a verdict frame to a vanished client: same contract as
            # _EOF — the session handle must reach the cleanup path.
            return session
        finally:
            pump_task.cancel()

    async def _drain_session(self, session: AuditSession, writer) -> None:
        """End one connection for a server drain: checkpoint, notify, close."""
        if self.store is not None and not session.finished:
            try:
                await self._save_checkpoint(session)
            except ServiceError as exc:
                await self._send_error(writer, exc, session)
                return
        try:
            await self._send(
                writer,
                {
                    "type": "draining",
                    "session": session.session_id,
                    "ops": session.ops_fed,
                    "checkpoints": session.checkpoints,
                    "resumable": self.store is not None,
                },
            )
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    async def _open_session(self, hello: dict) -> AuditSession:
        resume = bool(hello.get("resume", False))
        session_id = hello.get("session")
        if session_id is None:
            if resume:
                raise ServiceError("resume requires an explicit session id")
            self._session_counter += 1
            session_id = f"s{self._session_counter}"
        session_id = str(session_id)
        if session_id in self._active or session_id in self._opening:
            raise ServiceError(f"session {session_id!r} is already connected")
        if (
            self.max_active_sessions is not None
            and len(self._active) + len(self._opening) >= self.max_active_sessions
        ):
            raise ServerOverloaded(
                f"server is at its session limit ({self.max_active_sessions}); "
                "retry shortly"
            )
        self._opening.add(session_id)
        try:
            if resume:
                if self.store is None:
                    raise ServiceError("this server has no checkpoint store")
                # Unpickling a big checkpoint is the load-side twin of
                # _save_checkpoint: keep it off the event loop so concurrent
                # sessions stream uninterrupted through the handshake.
                payload = await asyncio.to_thread(self.store.load, session_id)
                if self._pool is not None:
                    session = await PooledAuditSession.resume(payload, self._pool)
                else:
                    session = AuditSession.resume(payload)
                if session.session_id != session_id:
                    raise ServiceError(
                        f"checkpoint belongs to session {session.session_id!r}"
                    )
            else:
                window = hello.get("window")
                if isinstance(window, (int, float)) and not isinstance(window, bool):
                    window = {"mode": "count", "size": window}  # bare size shorthand
                elif window is not None and not isinstance(window, dict):
                    raise ServiceError(
                        f"hello 'window' must be an object or a count size, got {window!r}"
                    )
                defaults = self.default_config.to_dict()
                merged = {**defaults, **{k: v for k, v in hello.items() if v is not None}}
                merged["window"] = {**defaults["window"], **(window or {})}
                config = SessionConfig.from_dict(merged)
                if self._pool is not None:
                    session = PooledAuditSession.start(session_id, config, self._pool)
                else:
                    session = AuditSession.start(session_id, config)
            self._active[session_id] = session
        finally:
            self._opening.discard(session_id)
        # Keyed assignment: a resume *continues* its logical session, so the
        # disconnected predecessor's entry is replaced rather than
        # double-counted (its restored ops are included in the new entry).
        self._session_log[session_id] = session
        return session

    async def _handle_control(
        self, frame: dict, session: AuditSession, writer, want_witness: bool
    ) -> bool:
        """Dispatch one mid-stream control frame; True ends the session."""
        kind = frame.get("type")
        if kind == "end":
            try:
                report = await session.afinish()
            except ReproError as exc:
                await self._send_error(writer, exc, session)
                return True
            await self._send(
                writer,
                {
                    "type": "report",
                    "session": session.session_id,
                    "k": report.k,
                    "ops": session.ops_fed,
                    "windows": report.num_windows,
                    "registers": report.num_registers,
                    "elapsed_s": round(report.elapsed_s, 6),
                    "results": results_to_pairs(report.results, witness=want_witness),
                },
            )
            if self.store is not None:
                self.store.discard(session.session_id)
            self._completed += 1
            if self.max_sessions is not None and self._completed >= self.max_sessions:
                self._stop_event.set()
            return True
        if kind == "checkpoint":
            if self.store is None:
                await self._send_error(
                    writer, "this server has no checkpoint store", session
                )
                return True
            try:
                await self._save_checkpoint(session)
            except ServiceError as exc:
                await self._send_error(writer, exc, session)
                return True
            await self._send(
                writer,
                {
                    "type": "checkpointed",
                    "session": session.session_id,
                    "ops": session.ops_fed,
                    "checkpoints": session.checkpoints,
                },
            )
            return False
        if kind == "stats":
            report = self.service_report()
            await self._send(
                writer,
                {
                    "type": "stats",
                    "sessions": report.num_sessions,
                    "active": report.active_sessions,
                    "ops": report.total_ops,
                    "alarms": report.total_alarms,
                    "uptime_s": round(report.uptime_s, 3),
                },
            )
            return False
        await self._send_error(writer, f"unknown control frame {kind!r}", session)
        return True

    async def _save_checkpoint(self, session: AuditSession) -> None:
        if self.store is None:
            return
        # Snapshot on the loop (cheap shallow copies of immutable state; a
        # pooled session awaits its workers' snapshots here), pickle + write
        # in a thread so other sessions keep streaming during the disk I/O.
        # The session's worker coroutine is parked on this await, so nothing
        # mutates the snapshotted state meanwhile.
        payload = await session.acheckpoint_payload()
        await asyncio.to_thread(self.store.save, session.session_id, payload)
        session.checkpoints += 1  # only persisted checkpoints count

    # ------------------------------------------------------------------
    async def _send(self, writer, frame: dict) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    async def _send_window(
        self, writer, session: AuditSession, report: WindowReport
    ) -> None:
        stats = report.stats
        frame = {
            "type": "window",
            "session": session.session_id,
            "index": stats.index,
            "ops": stats.num_ops,
            "registers": stats.num_registers,
            "alarms": sorted(report.alarms(), key=repr),
            "verdicts": [
                [key, verdict_to_dict(verdict)]
                for key, verdict in report.verdicts.items()
            ],
        }
        log = session.window_log
        if not log or frame["index"] > log[-1]["index"]:
            # Replayed ops after a resume re-close already-logged windows;
            # indices only ever grow, so an equal-or-lower index is a rerun.
            log.append(frame)
        await self._send(writer, frame)
        await asyncio.sleep(0)  # window work is the CPU chunk: yield after it

    async def _send_error(
        self,
        writer,
        error: Union[str, BaseException],
        session: Optional[AuditSession] = None,
    ) -> None:
        """Send one error frame; typed exceptions carry their code/retryable."""
        frame = error_frame(
            str(error),
            code=getattr(error, "code", ""),
            retryable=getattr(error, "retryable", False),
            session=session.session_id if session is not None else None,
        )
        try:
            await self._send(writer, frame)
        except ConnectionError:
            pass
