"""The self-healing audit client: retries, resume, and window dedup.

:class:`ResilientAuditClient` wraps :class:`~repro.service.client.AuditClient`
with the recovery loop a production collector needs against a faulty network
or a restarting server:

* every operation fed is kept in a **replay buffer**, so after any retryable
  failure the client reconnects (exponential backoff with jitter, seeded —
  chaos runs are reproducible end to end) and re-feeds exactly the suffix
  the server did not checkpoint;
* reconnects ask for ``resume`` once anything has been fed — the server's
  ``ops_restored`` tells the client where to pick the buffer back up; if the
  server has no checkpoint for the session (no store, or the checkpoint was
  consumed), the client falls back to a fresh session and replays from the
  start, which is still exactly-once *from the checkers' point of view*
  because a fresh session starts from empty state;
* re-delivered ``window`` frames (a resumed stream re-closes windows the
  client already saw) are **deduplicated by window index**, so
  :attr:`windows` and the ``on_window`` callback see each rolling verdict
  exactly once, in index order — byte-identical to a fault-free run.

The failure taxonomy is typed, not parsed: anything that is a
:class:`ConnectionError`/:class:`OSError` or carries ``retryable=True``
(:class:`~repro.core.errors.RetryableServiceError` and friends — including
:class:`~repro.core.errors.ServerDraining`) is retried; everything else
(malformed input, config mismatches, a crash-looped worker) propagates
immediately.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Union

from ..core.errors import ServiceError
from ..core.operation import Operation
from ..core.windows import WindowPolicy
from .client import AuditClient, RemoteReport

__all__ = ["RetryPolicy", "ResilientAuditClient"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and timeout settings of the self-healing client.

    ``max_attempts`` bounds *consecutive* failures without progress — a
    reconnect that restores ops or feeds further resets the count, so a long
    chaos run is not capped at eight faults overall.  Delays grow as
    ``base_delay_s * multiplier**n`` up to ``max_delay_s``, each multiplied
    by ``1 + jitter * u`` with ``u`` uniform in ``[0, 1)`` from the client's
    seeded stream.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.5
    connect_timeout_s: Optional[float] = 5.0
    #: Per-response wait before a connection is declared a black hole.  A
    #: lost frame normally also severs the connection (an error the client
    #: sees immediately) — the timeout is the backstop for the silent case.
    io_timeout_s: Optional[float] = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter < 0:
            raise ServiceError("retry delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ServiceError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )

    def delay_s(self, failure_index: int, rng: random.Random) -> float:
        """The sleep before retry number ``failure_index`` (0-based)."""
        base = min(
            self.base_delay_s * self.multiplier**failure_index, self.max_delay_s
        )
        return base * (1.0 + self.jitter * rng.random())


def _is_retryable(exc: BaseException) -> bool:
    if isinstance(exc, (ConnectionError, OSError, asyncio.TimeoutError)):
        return True
    return bool(getattr(exc, "retryable", False))


class ResilientAuditClient:
    """An audit session that survives connection loss and server restarts.

    Drop-in for the common :class:`AuditClient` flow::

        client = ResilientAuditClient(address, session="audit-1", k=2)
        for op in ops:
            await client.feed(op)
        report = await client.finish()

    ``session`` is required (resume needs a stable id).  The ``address`` may
    point at a :class:`~repro.service.chaos.ChaosProxy` — the client never
    needs to know.
    """

    def __init__(
        self,
        address: str,
        *,
        session: str,
        k: int = 2,
        algorithm: str = "auto",
        window: Optional[Union[WindowPolicy, int]] = None,
        witness: bool = False,
        tier: Optional[str] = None,
        policy: RetryPolicy = RetryPolicy(),
        seed: int = 0,
        on_window: Optional[Callable[[dict], None]] = None,
        checkpoint_every: Optional[int] = None,
    ):
        if not session:
            raise ServiceError("ResilientAuditClient requires a session id")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ServiceError(
                f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
            )
        self.address = address
        self.session = str(session)
        self.k = k
        self.algorithm = algorithm
        self.window = window
        self.witness = witness
        self.tier = tier
        self.policy = policy
        #: Client-driven checkpoint cadence (ops between ``checkpoint``
        #: frames).  Feeding is fire-and-forget — on a faulty path, hundreds
        #: of writes can land in a dead socket's buffer — so on hostile
        #: networks periodic checkpoints are what turns buffered ops into
        #: *acknowledged, resumable* progress.  Requires a server with a
        #: checkpoint store; ``None`` leaves cadence to the server.
        self.checkpoint_every = checkpoint_every
        self._rng = random.Random(f"{seed}:resilient:{session}")
        self._on_window = on_window
        #: Every operation ever fed, in feed order — the replay buffer.
        self._ops: List[Operation] = []
        #: Index into the buffer of the next operation to (re)send.
        self._next = 0
        #: Unique window frames by index (first arrival wins; re-deliveries
        #: after a resume are byte-identical by the replay guarantee).
        self._windows: Dict[int, dict] = {}
        self._client: Optional[AuditClient] = None
        #: True once any op reached a server — resume is worth asking for.
        self._dirty = False
        #: Highest op count a server has ever *acknowledged* (via a resume's
        #: ``ops_restored`` or a ``checkpointed`` frame).  Feeding alone is
        #: not acknowledgement — writes land in the local socket buffer long
        #: before a faulty path delivers them, so this is the only honest
        #: progress signal the retry budget can key on.
        self._acked_high = 0
        self._acked_at_last_failure = 0
        #: Consecutive retryable failures since acked progress last rose —
        #: drives the adaptive checkpoint cadence.
        self._consecutive_failures = 0
        #: Diagnostics: completed reconnects and faults ridden out.
        self.reconnects = 0
        self.retries = 0

    # ------------------------------------------------------------------
    @property
    def windows(self) -> List[dict]:
        """Deduplicated window frames, in window-index order."""
        return [self._windows[index] for index in sorted(self._windows)]

    @property
    def ops_buffered(self) -> int:
        """Operations held in the replay buffer."""
        return len(self._ops)

    async def __aenter__(self) -> "ResilientAuditClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def feed(self, op: Operation) -> None:
        """Buffer one operation and push the stream forward."""
        self._ops.append(op)
        await self._pump()

    async def feed_ops(self, ops: Iterable[Operation]) -> int:
        """Buffer and stream many operations; returns how many."""
        count = 0
        for op in ops:
            await self.feed(op)
            count += 1
        return count

    async def finish(self) -> RemoteReport:
        """Flush the buffer, end the stream, and decode the final report.

        Retryable failures after the ``end`` frame re-run the whole session:
        if the server completed it (and consumed the checkpoint) the fresh
        replay recomputes the identical report, checkers being deterministic.
        """
        failures = 0
        while True:
            try:
                await self._pump()
                assert self._client is not None
                report = await self._client.finish()
                self._client = None  # finish() closed the connection
                return replace(report, windows=tuple(self.windows))
            except Exception as exc:  # noqa: BLE001 - triaged right below
                failures = await self._handle_failure(exc, failures)

    async def checkpoint(self) -> dict:
        """Force a server-side checkpoint (retrying like any other call)."""
        failures = 0
        while True:
            try:
                await self._pump()
                assert self._client is not None
                frame = await self._client.checkpoint()
                self._acked_high = max(self._acked_high, int(frame.get("ops", 0)))
                return frame
            except Exception as exc:  # noqa: BLE001 - triaged right below
                failures = await self._handle_failure(exc, failures)

    async def close(self) -> None:
        """Drop the current connection (the buffer is kept for reuse)."""
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()

    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        """Drive the buffer suffix to the server, healing as needed."""
        failures = 0
        while self._next < len(self._ops) or self._client is None:
            if self._client is None:
                try:
                    await self._reconnect()
                except Exception as exc:  # noqa: BLE001 - triaged right below
                    failures = await self._handle_failure(exc, failures)
                    continue
            try:
                while self._next < len(self._ops):
                    await self._client.feed(self._ops[self._next])
                    self._next += 1
                    self._dirty = True
                    if (
                        self.checkpoint_every is not None
                        and self._next - self._acked_high
                        >= self._checkpoint_interval()
                    ):
                        frame = await self._client.checkpoint()
                        self._record_ack(int(frame.get("ops", 0)))
            except Exception as exc:  # noqa: BLE001 - triaged right below
                failures = await self._handle_failure(exc, failures)

    def _checkpoint_interval(self) -> int:
        """Ops between checkpoints, shrinking while failures accumulate.

        Feeding only counts once a checkpoint acknowledges it, so under a
        sustained fault rate a fixed cadence can starve: every attempt dies
        before reaching the next checkpoint and the stream never advances.
        Halving the interval per consecutive failure (floor 1) guarantees an
        interval short enough to survive eventually — acked progress then
        resets both the failures and the cadence.
        """
        assert self.checkpoint_every is not None
        return max(
            1, self.checkpoint_every >> min(self._consecutive_failures, 10)
        )

    def _record_ack(self, acked_ops: int) -> None:
        if acked_ops > self._acked_high:
            self._acked_high = acked_ops
            self._consecutive_failures = 0

    async def _connect_once(self, resume: bool) -> AuditClient:
        return await AuditClient.connect(
            self.address,
            session=self.session,
            k=self.k,
            algorithm=self.algorithm,
            window=self.window,
            resume=resume,
            witness=self.witness,
            tier=self.tier,
            on_window=self._collect_window,
            connect_timeout=self.policy.connect_timeout_s,
            io_timeout=self.policy.io_timeout_s,
        )

    async def _reconnect(self) -> None:
        """Open a connection, preferring resume once anything was fed."""
        want_resume = self._dirty
        try:
            client = await self._connect_once(want_resume)
        except ServiceError as exc:
            if not want_resume or _is_retryable(exc):
                raise
            # No checkpoint on the far side (no store, a consumed
            # checkpoint, or a fresh server): start the session over and
            # replay from the beginning.  Acked progress restarts with the
            # session; this is bookkeeping, not a fault, so it retries the
            # handshake inline rather than burning a failure.
            self._dirty = False
            self._next = 0
            self._acked_high = 0
            self._acked_at_last_failure = 0
            client = await self._connect_once(False)
        self._next = client.ops_restored if client.resumed else 0
        self._record_ack(self._next)
        self._client = client
        self.reconnects += 1

    async def _handle_failure(self, exc: BaseException, failures: int) -> int:
        """Drop the connection and back off, or re-raise a fatal error."""
        if not _is_retryable(exc):
            raise exc
        await self.close()
        if self._acked_high > self._acked_at_last_failure:
            failures = 0  # the server acknowledged new ops: not a stuck loop
        self._acked_at_last_failure = self._acked_high
        failures += 1
        self._consecutive_failures = failures
        self.retries += 1
        if failures >= self.policy.max_attempts:
            raise ServiceError(
                f"giving up after {failures} consecutive failed attempts; "
                f"last error: {exc}"
            ) from exc
        await asyncio.sleep(self.policy.delay_s(failures - 1, self._rng))
        return failures

    def _collect_window(self, frame: dict) -> None:
        index = int(frame.get("index", -1))
        if index in self._windows:
            return  # re-delivery after a resume (or a duplicated frame)
        self._windows[index] = frame
        if self._on_window is not None:
            self._on_window(frame)
