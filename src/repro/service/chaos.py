"""Service-side chaos: a fault-injecting proxy and scripted worker faults.

The service arm of the unified fault plan (:mod:`repro.chaos`).  Two
injectors consume the ``service``-domain clauses of one
:class:`~repro.chaos.plan.FaultPlan`:

* :class:`ChaosProxy` sits between an :class:`~repro.service.AuditClient`
  and an :class:`~repro.service.AuditServer` as a line-buffered TCP relay
  and perturbs whole protocol frames — dropping, delaying, duplicating,
  truncating, or corrupting them, each governed by its clause's
  deterministic random stream.
* :class:`WorkerChaos` attacks a :class:`~repro.service.pool.WorkerPool`
  from the outside with the signals a hostile host would: ``SIGKILL``
  (worker death → failover), ``SIGSTOP``/``SIGCONT`` stalls, and duty-cycle
  slowdowns.

Lossy frame faults (drop, truncate, corrupt) **close the proxied
connection immediately after injecting**: a cut TCP stream is the failure
a real network produces, and it is what makes chaos runs *verdict-preserving*
— the client observes a clean connection loss, reconnects with ``resume``,
and the checkpointed session replays exactly-once, so the completed verdict
stream still matches a fault-free run byte for byte.  Duplication applies
only to server→client ``window`` frames (the one frame type the client
deduplicates by index); corruption injects an invalid-UTF-8 byte so the
damage is always detected, never silently parsed.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Dict, List, Optional, Tuple

from ..chaos.plan import DOMAIN_SERVICE, FaultPlan
from ..core.errors import ServiceError
from .protocol import format_address, parse_address

__all__ = ["ChaosProxy", "WorkerChaos"]

#: Default per-frame injection probability of each frame_* clause.
DEFAULT_FAULT_PROBABILITY = 0.05

#: readline limit of the relay (must exceed any report frame it carries).
_PROXY_LIMIT = 1 << 26


class ChaosProxy:
    """A fault-injecting TCP relay between audit clients and a server.

    Point clients at :attr:`address` instead of the real server; every
    newline-terminated frame crossing the proxy is offered to the plan's
    ``frame_*`` clauses.  Frame clauses understand these params (all
    optional):

    ``probability``
        Per-frame injection chance (default ``0.05``).
    ``direction``
        ``"c2s"``, ``"s2c"``, or ``"both"`` (default ``"both"``; duplication
        defaults to ``"s2c"`` — see the module docstring).
    ``delay_ms``
        For ``frame_delay``: the added latency (default: drawn from
        1–20 ms per injection).
    ``max_injections``
        Budget per clause: after this many injections the clause goes
        quiet (default: unlimited).  The fault-plan minimizer and bounded
        chaos runs use budgets to keep schedules finite.

    Injection counts accumulate in :attr:`counts` for assertions and the
    chaos benchmark.
    """

    def __init__(
        self,
        upstream: str,
        plan: FaultPlan,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        kind, _ = parse_address(upstream)  # validate early
        if kind != "tcp":
            raise ServiceError("ChaosProxy relays TCP addresses only")
        self.upstream = upstream
        self.plan = plan
        self.host = host
        self.port = port
        self._clauses: List[Tuple[int, object]] = [
            (index, clause)
            for index, clause in plan.clauses_for(DOMAIN_SERVICE)
            if clause.kind.startswith("frame_")
        ]
        #: One live random stream per clause — deterministic given the plan,
        #: shared across every connection the proxy carries.
        self._rngs = {index: plan.rng_for(index) for index, _ in self._clauses}
        #: Injections so far per clause index (enforces ``max_injections``).
        self._injected = {index: 0 for index, _ in self._clauses}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        #: Injections by fault kind (e.g. ``{"frame_drop": 3}``).
        self.counts: Dict[str, int] = {}
        #: Connections accepted since start.
        self.connections = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening endpoint and begin relaying."""
        if self._server is not None:
            raise ServiceError("proxy already started")
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port, limit=_PROXY_LIMIT
        )

    @property
    def address(self) -> str:
        """The client-facing ``HOST:PORT`` (resolves ``port=0``)."""
        if self._server is None:
            raise ServiceError("proxy is not started")
        sock = self._server.sockets[0]
        return format_address("tcp", (self.host, sock.getsockname()[1]))

    async def stop(self) -> None:
        """Close the listener and sever every relayed connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle(self, client_reader, client_writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self.connections += 1
        upstream_writer = None
        try:
            _kind, (host, port) = parse_address(self.upstream)
            upstream_reader, upstream_writer = await asyncio.open_connection(
                host, port, limit=_PROXY_LIMIT
            )
            done = asyncio.Event()
            pumps = [
                asyncio.create_task(
                    self._pump(client_reader, upstream_writer, "c2s", done)
                ),
                asyncio.create_task(
                    self._pump(upstream_reader, client_writer, "s2c", done)
                ),
            ]
            # One closed (or faulted) direction tears down the whole relay:
            # half-open proxied connections would mask the fault from the
            # side that still believes the stream is healthy.
            await done.wait()
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
        except (ConnectionError, OSError):
            pass
        finally:
            self._conn_tasks.discard(task)
            for writer in (client_writer, upstream_writer):
                if writer is None:
                    continue
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError, asyncio.CancelledError):
                    pass

    async def _pump(self, reader, writer, direction: str, done) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                chunks, close, delay_s = self._inject(direction, line)
                if delay_s > 0:
                    # Order-preserving lag: this pump is the only writer in
                    # its direction, so sleeping here delays without
                    # reordering.
                    await asyncio.sleep(delay_s)
                for chunk in chunks:
                    writer.write(chunk)
                if chunks:
                    await writer.drain()
                if close:
                    return
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            done.set()

    def _inject(self, direction: str, line: bytes):
        """Offer one frame to every clause; returns (chunks, close, delay_s)."""
        chunks: List[bytes] = [line]
        delay_s = 0.0
        for index, clause in self._clauses:
            default_direction = (
                "s2c" if clause.kind == "frame_duplicate" else "both"
            )
            clause_direction = clause.param("direction", default_direction)
            if clause_direction not in ("both", direction):
                continue
            budget = clause.param("max_injections")
            if budget is not None and self._injected[index] >= int(budget):
                continue
            rng = self._rngs[index]
            probability = float(
                clause.param("probability", DEFAULT_FAULT_PROBABILITY)
            )
            if rng.random() >= probability:
                continue
            kind = clause.kind
            self._injected[index] += 1
            self.counts[kind] = self.counts.get(kind, 0) + 1
            if kind == "frame_drop":
                return [], True, delay_s
            if kind == "frame_truncate":
                cut = max(1, int(rng.random() * max(1, len(line) - 1)))
                return [line[:cut]], True, delay_s
            if kind == "frame_corrupt":
                damaged = bytearray(line)
                # 0xff can never appear in UTF-8, so the receiver's decoder
                # always detects the damage instead of parsing garbage.
                damaged[rng.randrange(max(1, len(damaged) - 1))] = 0xFF
                return [bytes(damaged)], True, delay_s
            if kind == "frame_delay":
                delay_s += (
                    float(clause.param("delay_ms", rng.uniform(1.0, 20.0)))
                    / 1000.0
                )
            elif kind == "frame_duplicate" and b'"type":"window"' in line:
                # Only window frames: they are the one frame type clients
                # deduplicate (by index), so a duplicate is survivable.
                chunks = chunks + [line]
        return chunks, False, delay_s


class WorkerChaos:
    """Scripted process-level faults against a :class:`WorkerPool`.

    Consumes the ``worker_*`` clauses of the plan; :meth:`run` applies them
    all concurrently and returns when the last one has finished.  Clause
    params (all optional, unpinned values drawn per clause from the plan's
    deterministic stream):

    ``at_s``
        Seconds after :meth:`run` starts (default: uniform over the first
        half of ``horizon_s``).
    ``worker``
        Worker id to target (default: random live worker at fire time).
    ``duration_s``
        Stall/slowdown length (default: 0.05–0.2 s).
    ``duty``
        For ``worker_slow``: fraction of each 20 ms cycle spent stopped
        (default 0.5).

    ``SIGKILL`` exercises snapshot+replay failover; ``SIGSTOP`` stalls
    exercise the recovery/ready timeouts without a death event; duty-cycle
    slowdowns exercise backpressure under a degraded worker.
    """

    def __init__(self, pool, plan: FaultPlan, *, horizon_s: float = 1.0):
        if horizon_s <= 0:
            raise ServiceError(f"horizon_s must be positive, got {horizon_s!r}")
        self.pool = pool
        self.plan = plan
        self.horizon_s = horizon_s
        self._clauses = [
            (index, clause)
            for index, clause in plan.clauses_for(DOMAIN_SERVICE)
            if clause.kind.startswith("worker_")
        ]
        #: Applied faults by kind (misfires on vanished pids not counted).
        self.counts: Dict[str, int] = {}

    async def run(self) -> Dict[str, int]:
        """Fire every worker clause on its schedule; returns :attr:`counts`."""
        if self._clauses:
            await asyncio.gather(
                *(self._apply(index, clause) for index, clause in self._clauses)
            )
        return self.counts

    # ------------------------------------------------------------------
    def _victim(self, clause, rng) -> Optional[int]:
        pids = self.pool.worker_pids()
        if not pids:
            return None
        worker = clause.param("worker")
        if worker is not None:
            return pids.get(int(worker))
        return pids[rng.choice(sorted(pids))]

    async def _apply(self, index: int, clause) -> None:
        rng = self.plan.rng_for(index)
        at_s = float(clause.param("at_s", rng.uniform(0.0, self.horizon_s * 0.5)))
        duration_s = float(clause.param("duration_s", rng.uniform(0.05, 0.2)))
        await asyncio.sleep(at_s)
        pid = self._victim(clause, rng)
        if pid is None:
            return
        try:
            if clause.kind == "worker_kill":
                os.kill(pid, signal.SIGKILL)
            elif clause.kind == "worker_stall":
                os.kill(pid, signal.SIGSTOP)
                try:
                    await asyncio.sleep(duration_s)
                finally:
                    self._resume(pid)
            elif clause.kind == "worker_slow":
                duty = min(max(float(clause.param("duty", 0.5)), 0.0), 1.0)
                cycle_s = 0.02
                elapsed = 0.0
                while elapsed < duration_s:
                    os.kill(pid, signal.SIGSTOP)
                    try:
                        await asyncio.sleep(cycle_s * duty)
                    finally:
                        self._resume(pid)
                    await asyncio.sleep(cycle_s * (1.0 - duty))
                    elapsed += cycle_s
            else:  # pragma: no cover - registry and this dispatch move together
                raise ServiceError(
                    f"service clause {clause.kind!r} is not a worker fault"
                )
        except ProcessLookupError:
            return  # already dead (e.g. a kill raced a stall): nothing to do
        self.counts[clause.kind] = self.counts.get(clause.kind, 0) + 1

    @staticmethod
    def _resume(pid: int) -> None:
        try:
            os.kill(pid, signal.SIGCONT)
        except ProcessLookupError:
            pass
