"""Durable session checkpoints for the audit service.

A checkpoint is one pickle file per session holding the payload produced by
:meth:`repro.service.session.AuditSession.checkpoint_payload` — the complete
engine-session snapshot (checker buffers, cadence state, monitor indexes,
open-window buffer, closed-window timeline) plus the session's own
accounting.  Restoring it yields verdicts identical to an uninterrupted run;
the parity tests in ``tests/test_checkpoint.py`` assert exactly that.

Writes are atomic (temp file + ``os.replace``) so a crash mid-checkpoint
leaves the previous checkpoint intact, and session identifiers are quoted
into safe file names so arbitrary client-chosen ids cannot escape the
checkpoint directory.
"""

from __future__ import annotations

import os
import pickle
import urllib.parse
from pathlib import Path
from typing import Dict, List, Union

from ..core.errors import ServiceError

__all__ = ["CheckpointStore"]

_SUFFIX = ".ckpt"


class CheckpointStore:
    """Directory-backed store of per-session checkpoint files."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, session_id: str) -> Path:
        """The checkpoint file a session persists to (quoted file name)."""
        name = urllib.parse.quote(str(session_id), safe="")
        return self.directory / f"{name}{_SUFFIX}"

    def session_ids(self) -> List[str]:
        """Identifiers of every checkpointed session, sorted."""
        return sorted(
            urllib.parse.unquote(path.name[: -len(_SUFFIX)])
            for path in self.directory.glob(f"*{_SUFFIX}")
        )

    def __contains__(self, session_id: str) -> bool:
        return self.path_for(session_id).exists()

    # ------------------------------------------------------------------
    def save(self, session_id: str, payload: Dict) -> Path:
        """Persist one checkpoint payload atomically; returns its path."""
        path = self.path_for(session_id)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except (OSError, pickle.PickleError, TypeError, ValueError, AttributeError) as exc:
            # pickle failures (unpicklable payload member) and I/O failures
            # alike must surface as ServiceError: the server's error handling
            # relies on this contract to answer in-band instead of dying.
            raise ServiceError(
                f"cannot write checkpoint for session {session_id!r}: {exc}"
            ) from exc
        finally:
            if tmp.exists():  # a failed dump leaves the temp file behind
                tmp.unlink(missing_ok=True)
        return path

    def load(self, session_id: str) -> Dict:
        """Load one checkpoint payload; raises :class:`ServiceError` if absent."""
        path = self.path_for(session_id)
        if not path.exists():
            raise ServiceError(
                f"no checkpoint for session {session_id!r} in {self.directory}"
            )
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise ServiceError(
                f"cannot read checkpoint for session {session_id!r}: {exc}"
            ) from exc

    def discard(self, session_id: str) -> bool:
        """Delete a session's checkpoint; returns whether one existed."""
        path = self.path_for(session_id)
        if path.exists():
            path.unlink()
            return True
        return False
