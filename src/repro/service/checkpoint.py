"""Durable session checkpoints for the audit service.

A checkpoint is one pickled payload per session — produced by
:meth:`repro.service.session.AuditSession.checkpoint_payload`, the complete
engine-session snapshot (checker buffers, cadence state, monitor indexes,
open-window buffer, closed-window timeline) plus the session's own
accounting.  Restoring it yields verdicts identical to an uninterrupted run;
the parity tests in ``tests/test_checkpoint.py`` assert exactly that.

Storage goes through the pluggable :mod:`repro.state` backends (``json`` —
one fsync-ed file per session, the historical layout — ``sqlite`` or
``segments``), selected by ``repro serve --state-backend``.  All backends
store the *same pickled bytes* for the same payload, so checkpoints are
byte-interchangeable across backends and a directory can be migrated by
re-putting each blob.  Writes are atomic and, by default, durable: the
blob is flushed and fsync-ed before it replaces the previous checkpoint,
and session identifiers are quoted/escaped by the backend so arbitrary
client-chosen ids cannot escape the store directory.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.errors import ServiceError, StateError
from ..state import DEFAULT_STATE_BACKEND, StateStore, open_state_store

__all__ = ["CheckpointStore", "SESSIONS_NAMESPACE"]

#: State-store namespace holding session checkpoint payloads.
SESSIONS_NAMESPACE = "sessions"


class CheckpointStore:
    """Per-session checkpoint persistence over a :class:`StateStore` backend.

    Construct with a directory and a backend name, or wrap an existing
    store with ``CheckpointStore(store=...)`` (the server does this so the
    checkpoint layer and the worker-pool journal share one store).
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        *,
        backend: str = DEFAULT_STATE_BACKEND,
        store: Optional[StateStore] = None,
    ):
        if store is not None:
            self.store = store
            self._owns_store = False
        else:
            if directory is None:
                raise ServiceError("CheckpointStore needs a directory or a store")
            self.store = open_state_store(backend, directory)
            self._owns_store = True
        self.backend = self.store.backend
        self.directory = Path(getattr(self.store, "directory", directory or "."))

    # ------------------------------------------------------------------
    def path_for(self, session_id: str) -> Path:
        """The file a session persists to (``json`` backend only layout)."""
        if hasattr(self.store, "path_for"):
            return self.store.path_for(SESSIONS_NAMESPACE, str(session_id))
        # Single-container backends have no per-session file; point at the
        # container so error messages and tooling still name a real path.
        return Path(getattr(self.store, "path", self.directory))

    def session_ids(self) -> List[str]:
        """Identifiers of every checkpointed session, sorted."""
        return self.store.keys(SESSIONS_NAMESPACE)

    def __contains__(self, session_id: str) -> bool:
        return self.store.contains(SESSIONS_NAMESPACE, str(session_id))

    # ------------------------------------------------------------------
    def save(self, session_id: str, payload: Dict) -> Path:
        """Persist one checkpoint payload atomically and durably."""
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            self.store.put(SESSIONS_NAMESPACE, str(session_id), blob)
        except (StateError, pickle.PickleError, TypeError, ValueError, AttributeError) as exc:
            # pickle failures (unpicklable payload member) and I/O failures
            # alike must surface as ServiceError: the server's error handling
            # relies on this contract to answer in-band instead of dying.
            raise ServiceError(
                f"cannot write checkpoint for session {session_id!r}: {exc}"
            ) from exc
        return self.path_for(session_id)

    def raw(self, session_id: str) -> bytes:
        """The stored pickle bytes — what the interchange tests compare."""
        try:
            return self.store.get(SESSIONS_NAMESPACE, str(session_id))
        except StateError as exc:
            raise ServiceError(str(exc)) from exc

    def load(self, session_id: str) -> Dict:
        """Load one checkpoint payload; raises :class:`ServiceError` if absent."""
        if not self.store.contains(SESSIONS_NAMESPACE, str(session_id)):
            raise ServiceError(
                f"no checkpoint for session {session_id!r} in {self.directory}"
            )
        try:
            blob = self.store.get(SESSIONS_NAMESPACE, str(session_id))
            return pickle.loads(blob)
        except (StateError, pickle.UnpicklingError, EOFError) as exc:
            raise ServiceError(
                f"cannot read checkpoint for session {session_id!r}: {exc}"
            ) from exc

    def discard(self, session_id: str) -> bool:
        """Delete a session's checkpoint; returns whether one existed."""
        return self.store.delete(SESSIONS_NAMESPACE, str(session_id))

    def close(self) -> None:
        """Close the underlying store if this facade opened it."""
        if self._owns_store:
            self.store.close()
