"""Consistent-hash shard routing for the audit worker pool.

The worker pool partitions checker state by *shard* — a ``(session_id,
register_key)`` pair, the unit of the paper's per-register locality theorem:
each register's verdict depends only on its own operations, so a shard can
live on any worker as long as *every* operation of that register reaches
*that* worker in stream order.

Routing must therefore be

* **deterministic across processes** — the event loop decides where a batch
  goes and a respawned pool must agree with its predecessor, so hashing is
  keyed on a canonical byte encoding of the shard key (never the
  per-process-salted builtin ``hash``);
* **stable under resizing** — growing a pool from *N* to *N + 1* workers
  should move roughly ``1/(N+1)`` of the shards (each migration drags a
  checker snapshot across the process boundary), not re-deal all of them the
  way ``hash(key) % N`` would.

Both come from a classic consistent-hash ring: every worker owns
:data:`DEFAULT_REPLICAS` pseudo-random points on a 64-bit circle, a shard key
hashes to a point, and the shard's home is the owner of the next point
clockwise.  The replicas smooth the load split (more points → the arcs of
each worker approach ``1/N`` of the circle) and make the moved fraction under
a resize concentrate near its ``1/(N+1)`` expectation.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from ..core.errors import ServiceError

__all__ = ["HashRing", "canonical_key_bytes", "DEFAULT_REPLICAS"]

#: Ring points per worker.  128 keeps the worker load split within a few
#: percent of uniform while the ring stays tiny (128·N 8-byte points).
DEFAULT_REPLICAS = 128


def canonical_key_bytes(key: Hashable) -> bytes:
    """Encode a shard key as process-independent bytes.

    Covers every key shape the service produces: session ids are strings and
    register keys arrive from JSON (``str``/``int``/``float``/``bool``/
    ``None``), possibly nested in tuples by
    :func:`~repro.service.protocol.hashable_key`.  Type tags keep distinct
    values distinct (``1`` vs ``"1"`` vs ``True``); anything exotic falls
    back to ``repr``, which is stable for the hashable immutables used as
    register names.
    """
    if isinstance(key, tuple):
        return b"t(" + b",".join(canonical_key_bytes(item) for item in key) + b")"
    if isinstance(key, bool):  # before int: bool is an int subclass
        return b"b1" if key else b"b0"
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    if isinstance(key, int):
        return b"i" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f" + repr(key).encode("ascii")
    if key is None:
        return b"n"
    return b"r" + repr(key).encode("utf-8")


def _point(data: bytes) -> int:
    """Hash bytes to a 64-bit ring position (keyed, process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring mapping shard keys to worker ids.

    Parameters
    ----------
    workers:
        The worker ids on the ring (any hashable ints; the pool uses dense
        indexes but respawned replacements keep their predecessor's id so
        routing never changes on failover).
    replicas:
        Ring points per worker.

    Example
    -------
    >>> ring = HashRing([0, 1, 2])
    >>> home = ring.route(("session-7", "x"))
    >>> home in (0, 1, 2)
    True
    >>> ring.route(("session-7", "x")) == home  # deterministic
    True
    """

    def __init__(self, workers: Iterable[int], *, replicas: int = DEFAULT_REPLICAS):
        self.workers: Tuple[int, ...] = tuple(workers)
        if not self.workers:
            raise ServiceError("a hash ring needs at least one worker")
        if len(set(self.workers)) != len(self.workers):
            raise ServiceError(f"duplicate worker ids on the ring: {self.workers!r}")
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas!r}")
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for worker in self.workers:
            label = canonical_key_bytes(worker)
            for replica in range(replicas):
                points.append((_point(b"%s#%d" % (label, replica)), worker))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    # ------------------------------------------------------------------
    def route(self, shard_key: Hashable) -> int:
        """The worker id owning ``shard_key`` (first ring point clockwise)."""
        position = _point(canonical_key_bytes(shard_key))
        index = bisect_right(self._points, position)
        if index == len(self._points):  # wrap around the circle
            index = 0
        return self._owners[index]

    def assignment(self, shard_keys: Iterable[Hashable]) -> Dict[Hashable, int]:
        """Route many shard keys at once: ``{shard_key: worker_id}``."""
        return {key: self.route(key) for key in shard_keys}

    def resized(self, workers: Sequence[int]) -> "HashRing":
        """A new ring over ``workers`` with the same replica count.

        Shared workers keep their points, so only shards whose arc gained or
        lost an owner move — the ``~1/N`` stability property the failover
        tests assert.
        """
        return HashRing(workers, replicas=self.replicas)

    def moved_keys(
        self, other: "HashRing", shard_keys: Iterable[Hashable]
    ) -> List[Hashable]:
        """The shard keys whose home differs between this ring and ``other``."""
        return [key for key in shard_keys if self.route(key) != other.route(key)]

    def __len__(self) -> int:
        return len(self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(workers={self.workers!r}, replicas={self.replicas})"
