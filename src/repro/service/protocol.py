"""Wire protocol of the audit service.

The session protocol is newline-delimited JSON over a byte stream (TCP or a
unix socket), deliberately shaped so that **a JSONL trace file is a valid
message body**: after one ``hello`` control frame, the client sends operation
records in exactly the format :func:`repro.io.formats.dump_jsonl` writes, and
may interleave further control frames (``checkpoint``, ``stats``, ``end``) on
the same channel.  A frame is any JSON object carrying a ``"type"`` field and
no ``"op_type"`` field; everything else is an operation record.

Client → server frames::

    {"type": "hello", "session": ID, "k": 2, "algorithm": "auto",
     "window": {"mode": "count", "size": 64, "overlap": 0},
     "resume": false, "witness": false}
    {"type": "checkpoint"}          # force a checkpoint now
    {"type": "stats"}               # ask for the service-level report
    {"type": "end"}                 # end of stream -> final report

Server → client frames::

    {"type": "welcome", "session": ID, "resumed": bool, "ops_restored": N}
    {"type": "window", "session": ID, "index": I, "ops": N, "alarms": [...],
     "verdicts": [[key, verdict], ...]}
    {"type": "checkpointed", "session": ID, "ops": N}
    {"type": "stats", "sessions": N, "active": N, "ops": N, "alarms": N,
     "uptime_s": S}
    {"type": "report", "session": ID, "k": K, "ops": N, "windows": N,
     "results": [[key, result], ...], "elapsed_s": S}
    {"type": "error", "error": MESSAGE, "code": CODE, "retryable": bool}

Error frames may carry a machine-readable ``code`` (``"overloaded"``,
``"idle_timeout"``, ``"crash_loop"``, ...) and a ``retryable`` flag;
:func:`error_to_exception` maps them onto the typed
:class:`~repro.core.errors.ServiceError` hierarchy so clients can branch on
the exception class instead of parsing messages.

Verdict/result payloads are produced by :func:`result_to_dict` /
:func:`verdict_to_dict` and decoded by their ``*_from_dict`` duals.  Register
keys travel as JSON values inside two-element ``[key, payload]`` lists (JSON
object keys must be strings, which would corrupt non-string register names);
:func:`hashable_key` restores decoded keys to hashable form.
"""

from __future__ import annotations

import json
from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..core.errors import (
    RetryableServiceError,
    ServerDraining,
    ServerOverloaded,
    ServiceError,
    SessionIdleTimeout,
    WorkerCrashLoopError,
)
from ..core.result import StreamVerdict, VerificationResult
from ..io.formats import operation_from_dict, operation_to_dict

__all__ = [
    "encode_frame",
    "decode_frame",
    "error_frame",
    "error_to_exception",
    "result_to_dict",
    "result_from_dict",
    "verdict_to_dict",
    "verdict_from_dict",
    "results_to_pairs",
    "results_from_pairs",
    "hashable_key",
    "parse_address",
    "format_address",
    "MAX_FRAME_BYTES",
]

#: Longest frame the service will read, in bytes (guards the line buffer).
MAX_FRAME_BYTES = 1 << 20


def encode_frame(frame: Dict) -> bytes:
    """Encode one frame as a newline-terminated UTF-8 JSON line."""
    return (json.dumps(frame, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode_frame(line: Union[str, bytes]) -> Dict:
    """Decode one frame line; raises :class:`ServiceError` on malformed input."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServiceError(f"malformed protocol frame: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed protocol frame: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise ServiceError(
            f"protocol frames must be JSON objects with a 'type' field, got {frame!r}"
        )
    return frame


#: Error codes with a dedicated exception class (everything else maps to the
#: base :class:`ServiceError`, or :class:`RetryableServiceError` when the
#: frame says retrying may help).
_ERROR_CLASSES = {
    ServerOverloaded.code: ServerOverloaded,
    SessionIdleTimeout.code: SessionIdleTimeout,
    WorkerCrashLoopError.code: WorkerCrashLoopError,
}


def error_frame(
    message: str,
    *,
    code: str = "",
    retryable: bool = False,
    session: Optional[str] = None,
) -> Dict:
    """Build one ``error`` frame, with optional code/retryable/session tags."""
    frame: Dict = {"type": "error", "error": message}
    if code:
        frame["code"] = code
    if retryable:
        frame["retryable"] = True
    if session is not None:
        frame["session"] = session
    return frame


def error_to_exception(frame: Dict) -> ServiceError:
    """Map a received ``error`` or ``draining`` frame to a typed exception.

    ``draining`` frames become :class:`~repro.core.errors.ServerDraining`
    carrying the resume token; ``error`` frames pick their class by ``code``
    (falling back on the ``retryable`` flag, then the plain base class).
    """
    if frame.get("type") == "draining":
        return ServerDraining(
            "server is draining; reconnect with resume once it restarts",
            session=frame.get("session"),
            ops=frame.get("ops", 0),
            checkpoints=frame.get("checkpoints", 0),
            resumable=frame.get("resumable", False),
        )
    message = str(frame.get("error", "unknown server error"))
    code = str(frame.get("code", ""))
    cls = _ERROR_CLASSES.get(code)
    if cls is not None:
        return cls(message)
    if frame.get("retryable"):
        exc = RetryableServiceError(message)
        exc.code = code
        return exc
    exc = ServiceError(message)
    exc.code = code
    return exc


def hashable_key(key) -> Hashable:
    """Make a JSON-decoded register key hashable (lists become tuples)."""
    if isinstance(key, list):
        return tuple(hashable_key(item) for item in key)
    return key


# ----------------------------------------------------------------------
# Results and verdicts
# ----------------------------------------------------------------------
def result_to_dict(result: VerificationResult, *, witness: bool = False) -> Dict:
    """Serialise a :class:`VerificationResult` for the wire.

    The witness (a full total order over the register's operations) is
    included only on request — it is O(register size) and most consumers
    only want the verdict.
    """
    record = {
        "ok": result.is_k_atomic,
        "k": result.k,
        "algorithm": result.algorithm,
        "reason": result.reason,
    }
    if result.stats:
        record["stats"] = result.stats
    if witness and result.witness is not None:
        record["witness"] = [operation_to_dict(op) for op in result.witness]
    return record


def result_from_dict(record: Dict) -> VerificationResult:
    """Decode :func:`result_to_dict` output back into a result object."""
    try:
        witness = record.get("witness")
        return VerificationResult(
            is_k_atomic=bool(record["ok"]),
            k=int(record["k"]),
            algorithm=record["algorithm"],
            witness=(
                tuple(operation_from_dict(op) for op in witness)
                if witness is not None
                else None
            ),
            reason=record.get("reason", ""),
            stats=dict(record.get("stats", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed result payload: {record!r}") from exc


def verdict_to_dict(verdict: StreamVerdict) -> Dict:
    """Serialise a mid-stream :class:`StreamVerdict` (witness never included)."""
    record = result_to_dict(verdict.result)
    record["ops_seen"] = verdict.ops_seen
    record["final"] = verdict.final
    return record


def verdict_from_dict(record: Dict) -> StreamVerdict:
    """Decode :func:`verdict_to_dict` output back into a stream verdict."""
    try:
        return StreamVerdict(
            result=result_from_dict(record),
            ops_seen=int(record["ops_seen"]),
            final=bool(record["final"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed verdict payload: {record!r}") from exc


def results_to_pairs(
    results: Dict[Hashable, VerificationResult], *, witness: bool = False
) -> List[Tuple]:
    """Encode a per-register result mapping as ``[key, payload]`` pairs."""
    return [
        [key, result_to_dict(result, witness=witness)]
        for key, result in results.items()
    ]


def results_from_pairs(pairs) -> Dict[Hashable, VerificationResult]:
    """Decode ``[key, payload]`` pairs back to a per-register mapping."""
    return {hashable_key(key): result_from_dict(payload) for key, payload in pairs}


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------
def parse_address(address: str) -> Tuple[str, object]:
    """Parse a service address into ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepted forms: ``unix:/run/audit.sock``, ``host:port``, and ``:port``
    (localhost).
    """
    if address.startswith("unix:"):
        path = address[len("unix:") :]
        if not path:
            raise ServiceError("unix address is missing the socket path")
        return ("unix", path)
    host, sep, port_text = address.rpartition(":")
    if not sep:
        raise ServiceError(
            f"address {address!r} is neither 'unix:PATH' nor 'HOST:PORT'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(f"address {address!r} has a non-numeric port") from None
    return ("tcp", (host or "127.0.0.1", port))


def format_address(kind: str, endpoint) -> str:
    """Inverse of :func:`parse_address`, for logs and CLI output."""
    if kind == "unix":
        return f"unix:{endpoint}"
    host, port = endpoint
    return f"{host}:{port}"
