"""Audit-session state: one client stream, one checkpointable engine session.

An :class:`AuditSession` binds a session identifier and configuration to a
:class:`~repro.engine.streaming.StreamSession` — the per-register incremental
checkers plus the window assembler — and tracks the service-level accounting
(ops fed, alarms raised, checkpoints taken) that ends up in the
:class:`~repro.analysis.report.ServiceReport`.  The server keeps one of these
per connected stream; the session itself is transport-agnostic, so tests and
embedders can drive it directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.report import SessionStats, StreamVerificationReport, WindowReport
from ..core.errors import ServiceError, VerificationError
from ..core.operation import Operation
from ..core.windows import WindowPolicy
from ..engine.streaming import StreamingEngine, StreamSession
from ..engine.tiering import TIER_NAMES
from ..state import available_backends

__all__ = ["SessionConfig", "AuditSession", "DEFAULT_SESSION_WINDOW"]

#: Default per-session window: tumbling, 64 fresh operations.
DEFAULT_SESSION_WINDOW = 64


@dataclass(frozen=True)
class SessionConfig:
    """What one audit session verifies and how its stream is windowed.

    Built from the ``hello`` frame of the session protocol; every field has
    a server-side default so a minimal ``{"type": "hello"}`` opens a
    2-atomicity session over 64-operation tumbling windows.
    """

    k: int = 2
    algorithm: str = "auto"
    window_mode: str = "count"
    window_size: float = DEFAULT_SESSION_WINDOW
    window_overlap: float = 0.0
    #: Which :mod:`repro.state` backend the service persists this session
    #: with.  Deliberately excluded from :meth:`to_dict`: the backend is an
    #: operational choice, and keeping it out of the checkpoint payload is
    #: what makes payloads byte-interchangeable across backends.
    state_backend: str = "json"
    #: Adaptive tier policy (:data:`repro.engine.tiering.TIER_NAMES`).  The
    #: default ``"exact"`` keeps the pre-tiering behaviour — and is omitted
    #: from :meth:`to_dict` so default checkpoint payloads stay byte-identical
    #: to earlier releases.
    tier: str = "exact"

    def window_policy(self) -> WindowPolicy:
        """The window policy the configuration describes (validating it)."""
        return WindowPolicy(
            mode=self.window_mode, size=self.window_size, overlap=self.window_overlap
        )

    def to_dict(self) -> Dict:
        """JSON/pickle-friendly form (stored in checkpoints).

        ``state_backend`` is intentionally absent — see the field comment.
        """
        record: Dict = {
            "k": self.k,
            "algorithm": self.algorithm,
            "window": {
                "mode": self.window_mode,
                "size": self.window_size,
                "overlap": self.window_overlap,
            },
        }
        if self.tier != "exact":
            record["tier"] = self.tier
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "SessionConfig":
        """Build a configuration from a ``hello`` frame or checkpoint record."""
        window = record.get("window") or {}
        try:
            config = cls(
                k=int(record.get("k", 2)),
                algorithm=str(record.get("algorithm", "auto")),
                window_mode=str(window.get("mode", "count")),
                window_size=float(window.get("size", DEFAULT_SESSION_WINDOW)),
                window_overlap=float(window.get("overlap", 0.0)),
                state_backend=str(record.get("state_backend", "json")),
                tier=str(record.get("tier", "exact")),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed session configuration: {record!r}") from exc
        try:
            config.window_policy()  # validate eagerly, before the stream starts
        except VerificationError as exc:
            raise ServiceError(str(exc)) from exc
        if config.k < 1:
            raise ServiceError(f"k must be a positive integer, got {config.k!r}")
        if config.state_backend not in available_backends():
            raise ServiceError(
                f"unknown state backend {config.state_backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        if config.tier not in TIER_NAMES:
            raise ServiceError(
                f"unknown tier {config.tier!r}; available: {', '.join(TIER_NAMES)}"
            )
        return config


class AuditSession:
    """One multiplexed audit stream inside the service.

    Construction goes through :meth:`start` (a fresh stream) or
    :meth:`resume` (rehydrating a checkpoint payload); the server then calls
    :meth:`feed` per operation, :meth:`checkpoint_payload` when persisting,
    and :meth:`finish` on the ``end`` frame.
    """

    def __init__(
        self,
        session_id: str,
        config: SessionConfig,
        stream: StreamSession,
        *,
        resumed: bool = False,
        checkpoints: int = 0,
        elapsed_prior: float = 0.0,
    ):
        self.session_id = session_id
        self.config = config
        self.stream = stream
        self.resumed = resumed
        self.checkpoints = checkpoints
        self.alarmed_keys = set()
        #: Every window frame sent so far, in index order (no witnesses, so
        #: they stay small).  Checkpoints persist the log and a resume
        #: re-delivers it: a frame lost between a window close and a covering
        #: checkpoint would otherwise be gone for good — replay restarts
        #: *after* the checkpoint and never re-closes that window.  Clients
        #: deduplicate by window index, so re-delivery is idempotent.
        self.window_log: List[Dict] = []
        #: Tiering accounting for :meth:`stats` (zero when tier == "exact").
        self.escalations = 0
        self.windows_bypassed = 0
        self.finished = False
        self._elapsed_prior = elapsed_prior
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    @classmethod
    def _engine(cls, config: SessionConfig) -> StreamingEngine:
        if config.tier != "exact":
            return StreamingEngine(
                window=config.window_policy(),
                mode="rolling",
                algorithm=config.algorithm,
                executor="serial",
                tier=config.tier,
            )
        return StreamingEngine(
            window=config.window_policy(),
            mode="rolling",
            algorithm=config.algorithm,
            executor="serial",
        )

    @classmethod
    def start(cls, session_id: str, config: SessionConfig) -> "AuditSession":
        """Open a fresh session."""
        engine = cls._engine(config)
        return cls(session_id, config, engine.open_session(config.k))

    @classmethod
    def resume(cls, payload: Dict) -> "AuditSession":
        """Rehydrate a session from a :meth:`checkpoint_payload` mapping."""
        try:
            session_id = payload["session_id"]
            config = SessionConfig.from_dict(payload["config"])
            stream_state = payload["stream"]
        except KeyError as exc:
            raise ServiceError(f"malformed checkpoint payload: missing {exc}") from exc
        engine = cls._engine(config)
        try:
            stream = engine.resume_session(stream_state)
        except VerificationError as exc:
            raise ServiceError(str(exc)) from exc
        session = cls(
            session_id,
            config,
            stream,
            resumed=True,
            checkpoints=payload.get("checkpoints", 0),
            elapsed_prior=payload.get("elapsed_s", 0.0),
        )
        session.alarmed_keys = set(payload.get("alarmed_keys", ()))
        session.window_log = [dict(frame) for frame in payload.get("window_log", ())]
        tiering = payload.get("tiering") or {}
        session.escalations = int(tiering.get("escalations", 0))
        session.windows_bypassed = int(tiering.get("windows_bypassed", 0))
        return session

    # ------------------------------------------------------------------
    @property
    def ops_fed(self) -> int:
        """Operations fed into the session so far."""
        return self.stream.ops_fed

    @property
    def num_alarms(self) -> int:
        """Registers whose verdict has turned into a final NO."""
        return len(self.alarmed_keys)

    def feed(self, op: Operation) -> Optional[WindowReport]:
        """Feed one operation; returns the closed window's report, if any."""
        report = self.stream.feed(op)
        if report is not None:
            self.alarmed_keys.update(report.alarms())
            self._note_tiering(report)
        return report

    def _note_tiering(self, report: WindowReport) -> None:
        """Fold one window's tier routing into the session counters."""
        if not report.tiers:
            return
        self.escalations += report.num_escalated
        if all(mode != "check" for mode in report.tiers.values()):
            self.windows_bypassed += 1

    def finish(self) -> StreamVerificationReport:
        """Seal the stream and return the final (batch-equal) report."""
        report = self.stream.finish()
        self.alarmed_keys.update(report.failures)
        self.finished = True
        return report

    # ------------------------------------------------------------------
    # Async surface
    # ------------------------------------------------------------------
    # The server drives every session through these coroutines so pooled
    # sessions (repro.service.pool.PooledAuditSession), whose checkers answer
    # over a process boundary, plug in without the server caring.  For the
    # in-process session they simply delegate: the synchronous calls are
    # sub-millisecond per operation and already yield to the loop through the
    # server's own cadence.

    async def afeed(self, op: Operation) -> Optional[WindowReport]:
        """Coroutine form of :meth:`feed`."""
        return self.feed(op)

    async def afinish(self) -> StreamVerificationReport:
        """Coroutine form of :meth:`finish`."""
        return self.finish()

    async def acheckpoint_payload(self) -> Dict:
        """Coroutine form of :meth:`checkpoint_payload`."""
        return self.checkpoint_payload()

    async def aclose(self) -> None:
        """Release per-session resources on abandonment (no-op in-process)."""

    def checkpoint_payload(self) -> Dict:
        """The picklable mapping a checkpoint of this session stores.

        The embedded ``checkpoints`` count includes the checkpoint being
        taken; the live :attr:`checkpoints` counter is bumped by the caller
        only once the save actually lands, so a failed save never inflates
        the session's statistics.
        """
        payload = {
            "session_id": self.session_id,
            "config": self.config.to_dict(),
            "stream": self.stream.snapshot(),
            "checkpoints": self.checkpoints + 1,
            "alarmed_keys": list(self.alarmed_keys),
            "window_log": [dict(frame) for frame in self.window_log],
            "elapsed_s": self.elapsed_s,
        }
        if self.config.tier != "exact":
            # Conditional like SessionConfig.tier: default payloads stay
            # byte-identical to pre-tiering releases.
            payload["tiering"] = {
                "escalations": self.escalations,
                "windows_bypassed": self.windows_bypassed,
            }
        return payload

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds this session has been live (across resumes)."""
        return self._elapsed_prior + (time.monotonic() - self._t0)

    def stats(self) -> SessionStats:
        """The service-report row for this session."""
        return SessionStats(
            session_id=self.session_id,
            k=self.config.k,
            window=self.config.window_policy().describe(),
            num_ops=self.ops_fed,
            num_windows=self.stream.num_windows,
            num_registers=self.stream.num_registers,
            num_alarms=self.num_alarms,
            checkpoints=self.checkpoints,
            resumed=self.resumed,
            finished=self.finished,
            elapsed_s=self.elapsed_s,
            tier=self.config.tier,
            escalations=self.escalations,
            windows_bypassed=self.windows_bypassed,
        )
