"""The audit worker pool: checker work on many cores, event loop on one.

The single-process :class:`~repro.service.server.AuditServer` multiplexes
every session onto one event loop, so all checker CPU — the per-window
``check_now`` re-checks especially — runs on one core.  This module moves the
checkers into a pool of long-lived worker *processes* while the event loop
keeps doing what it is good at: socket pumping, JSONL decoding, backpressure
and window bookkeeping.

Architecture
------------
* **Shards.**  The unit of placement is a ``(session_id, register_key)``
  shard — the per-register locality theorem (Section II-B) makes a
  register's verdict independent of every other register, so a shard can live
  on any worker as long as all of its operations arrive there in stream
  order.  :class:`~repro.service.routing.HashRing` maps shards to workers
  deterministically and moves only ``~1/N`` of them when the pool resizes.
* **Feed batches.**  When a session's window closes, the event loop groups
  the window's fresh operations per register, groups registers per home
  worker, and ships one compact request per worker over the stream-order
  feed-batch codec (:func:`repro.engine.codec.encode_feed_batches` — the
  PR 3 column wire format, ~35-40 B/op).  Workers feed their incremental
  checkers and return per-register :class:`~repro.core.result.StreamVerdict`
  payloads, which the loop merges back into the ordinary
  :class:`~repro.analysis.report.WindowReport` stream — verdict-for-verdict
  identical to the single-process path, because the *same* checker code sees
  the *same* operations in the *same* order.
* **Failover.**  The pool keeps, per shard, the last checker snapshot (taken
  piggyback on a feed every ``snapshot_every`` windows) plus the operation
  batches fed since.  When a worker process dies, a replacement is spawned
  under the same worker id (so routing never changes), every shard homed
  there is restored from its snapshot, and the logged batches are replayed
  with their original check cadence — the rebuilt checker state is
  *identical* to the lost one, so the resumed verdict stream matches an
  uninterrupted run.  :meth:`WorkerPool.resize` migrates moved shards the
  same way, preferring a live snapshot from the old home.

Memory trade-off: the parent's snapshot+replay copy roughly doubles resident
checker state versus single-process serving; ``snapshot_every`` bounds the
replay log, and a session checkpoint (which pulls fresh snapshots anyway)
resets it for free.  Passing a :class:`repro.state.StateStore` as the pool's
``journal`` moves that copy out of parent memory instead: snapshots land in
the ``pool-snap`` namespace and replay batches in ``pool-log``, loaded back
only on the (rare) failover or resize path.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import pickle
import signal
import threading
import time
from dataclasses import replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..analysis.report import (
    StreamVerificationReport,
    WindowReport,
    WindowStats,
    WorkerStats,
)
from ..core.errors import (
    ReproError,
    ServiceError,
    VerificationError,
    WorkerCrashLoopError,
)
from ..core.operation import Operation, ensure_op_ids_above
from ..core.windows import Window, WindowAssembler
from ..engine.codec import decode_feed_batches, encode_feed_batches
from ..engine.tiering import TierStreamState, get_tier_policy
from .session import AuditSession, SessionConfig

__all__ = ["WorkerPool", "PooledStreamSession", "PooledAuditSession"]

#: Take a piggyback checker snapshot every this many windows per shard
#: (bounds the failover replay log).
DEFAULT_SNAPSHOT_EVERY = 16

#: How long a caller waits for a dead worker's replacement before giving up.
RECOVERY_TIMEOUT_S = 30.0

#: Feed attempts per window batch before the pool declares the shard lost.
_MAX_ATTEMPTS = 5

#: Crash-loop detection default: this many respawns of one worker id...
DEFAULT_CRASH_LOOP_THRESHOLD = 10

#: ...within this many seconds stops respawning it and fails its shards.
DEFAULT_CRASH_LOOP_WINDOW_S = 10.0

#: First respawn delay; doubles per respawn inside the crash-loop window.
_RESPAWN_BACKOFF_BASE_S = 0.05

#: Longest delay the respawn backoff grows to.
_RESPAWN_BACKOFF_CAP_S = 2.0


def _default_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (3 ms worker starts), else ``spawn``."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class _WorkerDied(Exception):
    """Internal: the home worker's process ended before replying."""

    def __init__(self, worker_id: int, generation: int):
        super().__init__(f"worker {worker_id} (generation {generation}) died")
        self.worker_id = worker_id
        self.generation = generation


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------
def _make_checker(config: Dict):
    from ..algorithms.online import checker_for

    return checker_for(
        int(config["k"]), algorithm=str(config.get("algorithm", "auto"))
    )


def _close_inherited_fds(keep: Sequence[int]) -> None:
    """Close every descriptor a forked worker inherited except ``keep``.

    A ``fork`` start leaves the child holding duplicates of every parent
    descriptor — listening sockets and *established connections* included.
    A worker respawned mid-serving would then keep the parent's closed TCP
    connections half-alive (the kernel only sends FIN once the last copy
    closes), so a peer blocked on ``read`` never sees the disconnect.  The
    worker talks exclusively over its pipe: everything else gets closed.
    """
    keep_fds = set(keep) | {0, 1, 2}
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:  # pragma: no cover - no procfs (spawn ctx: nothing leaks)
        return
    for fd in fds:
        if fd in keep_fds:
            continue
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed / listdir's own fd
            pass


def _worker_main(conn, worker_id: int) -> None:
    """Entry point of one pool worker process.

    A single-threaded request loop over a duplex pipe: requests arrive as
    pickled ``(request_id, command, *args)`` tuples and are answered with
    ``(request_id, ok, payload)``.  One worker owns each of its shards
    exclusively, so there is no locking anywhere — the request order *is* the
    feed order.
    """
    _close_inherited_fds([conn.fileno()])
    # The serving parent handles SIGINT/SIGTERM itself (graceful drain);
    # workers must not die out from under it when a Ctrl-C hits the group.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    from ..algorithms.online import restore_checker

    checkers: Dict[Tuple, object] = {}

    def handle(command: str, args: tuple):
        if command == "feed":
            entries, blob = args
            batches = decode_feed_batches(blob)
            replies = []
            for (shard_id, mode, config, want_snapshot), (_key, ops) in zip(
                entries, batches
            ):
                checker = checkers.get(shard_id)
                if checker is None:
                    if config is None:
                        raise ServiceError(
                            f"worker {worker_id} has no checker for shard "
                            f"{shard_id!r} and no config to create one"
                        )
                    checker = checkers[shard_id] = _make_checker(config)
                for op in ops:
                    checker.feed(op)
                if mode == "check":
                    verdict = checker.check_now()
                elif mode == "peek":
                    verdict = checker.peek()
                else:  # "none": replay path, no verdict needed
                    verdict = None
                if verdict is not None and verdict.result.witness is not None:
                    # A witness is a total order over the register's whole
                    # history — O(n) per window, O(n^2) over a stream if it
                    # crossed the pipe every close.  Mid-stream verdicts never
                    # reach clients with witnesses anyway (the session
                    # protocol sends them only in the final report, which
                    # finish() ships complete), so strip here.
                    verdict = replace(
                        verdict, result=replace(verdict.result, witness=None)
                    )
                replies.append(
                    (verdict, checker.snapshot() if want_snapshot else None)
                )
            return replies
        if command == "finish":
            (shard_ids,) = args
            results = []
            for shard_id in shard_ids:
                checker = checkers.pop(shard_id, None)
                if checker is None:
                    raise ServiceError(
                        f"worker {worker_id} has no checker for shard {shard_id!r}"
                    )
                results.append(checker.finish())
            return results
        if command == "snapshot":
            (shard_ids,) = args
            return [checkers[shard_id].snapshot() for shard_id in shard_ids]
        if command == "restore":
            (entries,) = args
            restored = 0
            for shard_id, config, state, replay_blobs in entries:
                if state is None:
                    checker = _make_checker(config)
                else:
                    checker = restore_checker(state)
                for blob, mode in replay_blobs:
                    for _key, ops in decode_feed_batches(blob):
                        for op in ops:
                            checker.feed(op)
                        # Re-issue the original per-window check call: the
                        # cadence counters it advances are part of checker
                        # state, and state identity is what makes the resumed
                        # verdict stream equal an uninterrupted one.
                        if mode == "check":
                            checker.check_now()
                        elif mode == "peek":
                            checker.peek()
                checkers[shard_id] = checker
                restored += 1
            return restored
        if command == "drop":
            (shard_ids,) = args
            for shard_id in shard_ids:
                checkers.pop(shard_id, None)
            return len(checkers)
        if command == "ping":
            return ("pong", os.getpid(), len(checkers))
        raise ServiceError(f"unknown worker command {command!r}")

    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            return  # parent went away: exit quietly
        request_id, command, *args = pickle.loads(message)
        if command == "stop":
            try:
                conn.send_bytes(
                    pickle.dumps((request_id, True, None), pickle.HIGHEST_PROTOCOL)
                )
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            payload = (request_id, True, handle(command, tuple(args)))
        except ReproError as exc:
            payload = (request_id, False, str(exc))
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            payload = (request_id, False, f"{type(exc).__name__}: {exc}")
        try:
            conn.send_bytes(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """Parent-side view of one worker process.

    Owns the duplex pipe, a blocking reader thread that resolves response
    futures back on the event loop, and the per-worker traffic counters.  A
    respawned replacement is a *new* handle under the same worker id with
    ``generation + 1``.
    """

    def __init__(self, worker_id: int, generation: int, ctx, loop):
        self.worker_id = worker_id
        self.generation = generation
        self._loop = loop
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id),
            name=f"repro-audit-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # the parent's copy; the child keeps its own
        self.ready = asyncio.Event()
        self.dead = False
        self.stopping = False
        self._futures: Dict[int, asyncio.Future] = {}
        self._request_counter = 0
        self._send_lock = asyncio.Lock()
        self.on_death = None  # set by the pool before first use
        self.batches = 0
        self.ops = 0
        self.snapshots = 0
        self.restored_shards = 0
        self._reader = threading.Thread(
            target=self._read_loop, name=f"audit-pool-reader-{worker_id}", daemon=True
        )
        self._reader.start()

    # -- reader thread --------------------------------------------------
    def _read_loop(self) -> None:
        try:
            while True:
                blob = self.conn.recv_bytes()
                self._loop.call_soon_threadsafe(self._dispatch, blob)
        except (EOFError, OSError):
            pass
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            self._loop.call_soon_threadsafe(self._mark_dead)
        except RuntimeError:  # loop already closed (interpreter shutdown)
            pass

    # -- event-loop side ------------------------------------------------
    def _dispatch(self, blob: bytes) -> None:
        request_id, ok, payload = pickle.loads(blob)
        future = self._futures.pop(request_id, None)
        if future is None or future.done():
            return
        if ok:
            future.set_result(payload)
        else:
            future.set_exception(ServiceError(payload))

    def _mark_dead(self) -> None:
        if self.dead:
            return
        self.dead = True
        self.ready.clear()
        for future in self._futures.values():
            if not future.done():
                future.set_exception(
                    _WorkerDied(self.worker_id, self.generation)
                )
        self._futures.clear()
        if self.on_death is not None and not self.stopping:
            self.on_death(self.worker_id, self.generation)

    async def request(self, command: str, *args):
        """Send one request and await its reply (raises ``_WorkerDied``)."""
        if self.dead:
            raise _WorkerDied(self.worker_id, self.generation)
        self._request_counter += 1
        request_id = self._request_counter
        future = self._loop.create_future()
        self._futures[request_id] = future
        blob = pickle.dumps(
            (request_id, command, *args), pickle.HIGHEST_PROTOCOL
        )
        async with self._send_lock:
            try:
                # The pipe write can block when the kernel buffer is full, so
                # it runs off the loop; the per-handle lock keeps frames whole.
                await asyncio.to_thread(self.conn.send_bytes, blob)
            except (BrokenPipeError, OSError):
                self._futures.pop(request_id, None)
                self._mark_dead()
                raise _WorkerDied(self.worker_id, self.generation) from None
        return await future

    async def stop(self, timeout: float = 2.0) -> None:
        """Orderly shutdown: ask, wait briefly, then kill."""
        self.stopping = True
        if not self.dead:
            try:
                await asyncio.wait_for(self.request("stop"), timeout)
            except (ServiceError, _WorkerDied, asyncio.TimeoutError):
                pass
        await asyncio.to_thread(self.process.join, timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            await asyncio.to_thread(self.process.join, timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass


#: State-store namespaces of the journalled worker-pool failover state.
POOL_SNAP_NAMESPACE = "pool-snap"
POOL_LOG_NAMESPACE = "pool-log"


class _ReplayLog:
    """The feed batches logged since a shard's last snapshot.

    List-shaped (``append``/``clear``/``bool``/iteration — all the pool
    uses); with a journal attached, entries live in the ``pool-log``
    namespace of the state store instead of parent memory and are loaded
    back only when failover or resize actually replays them.
    """

    __slots__ = ("_journal", "_prefix", "_entries", "_count")

    def __init__(self, journal, prefix: str):
        self._journal = journal
        self._prefix = prefix
        self._entries: Optional[List[Tuple[bytes, str]]] = (
            [] if journal is None else None
        )
        self._count = 0

    def _key(self, index: int) -> str:
        return f"{self._prefix}:{index:08d}"

    def append(self, entry: Tuple[bytes, str]) -> None:
        if self._journal is None:
            self._entries.append(entry)
        else:
            self._journal.put(
                POOL_LOG_NAMESPACE,
                self._key(self._count),
                pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL),
                durable=False,
            )
        self._count += 1

    def clear(self) -> None:
        if self._journal is None:
            self._entries.clear()
        else:
            for index in range(self._count):
                self._journal.delete(POOL_LOG_NAMESPACE, self._key(index))
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self):
        if self._journal is None:
            return iter(list(self._entries))
        return iter(
            [
                pickle.loads(self._journal.get(POOL_LOG_NAMESPACE, self._key(i)))
                for i in range(self._count)
            ]
        )


class _ShardState:
    """What the parent remembers about one shard, for failover and resize.

    With a journal (a :class:`repro.state.StateStore`), the snapshot blob
    and replay log are persisted there rather than held in parent memory;
    the hot path only ever touches the cheap ``has_snapshot`` flag and the
    replay count.
    """

    __slots__ = (
        "session_id",
        "key",
        "config",
        "replay",
        "since_snapshot",
        "_journal",
        "_journal_key",
        "_snapshot",
        "_has_snapshot",
    )

    def __init__(self, session_id: str, key: Hashable, config: Dict, journal=None):
        self.session_id = session_id
        self.key = key
        self.config = config
        self._journal = journal
        # \x1f (unit separator) cannot collide with ':'-indexed log keys.
        self._journal_key = f"{session_id}\x1f{key!r}"
        self._snapshot: Optional[Dict] = None  # in-memory copy (no journal)
        self._has_snapshot = False
        self.replay = _ReplayLog(journal, self._journal_key)
        self.since_snapshot = 0

    @property
    def has_snapshot(self) -> bool:
        """Cheap presence test — never loads the journalled blob."""
        if self._journal is None:
            return self._snapshot is not None
        return self._has_snapshot

    @property
    def snapshot(self) -> Optional[Dict]:
        if self._journal is None:
            return self._snapshot
        if not self._has_snapshot:
            return None
        return pickle.loads(
            self._journal.get(POOL_SNAP_NAMESPACE, self._journal_key)
        )

    @snapshot.setter
    def snapshot(self, value: Optional[Dict]) -> None:
        if self._journal is None:
            self._snapshot = value
            return
        if value is None:
            self._journal.delete(POOL_SNAP_NAMESPACE, self._journal_key)
            self._has_snapshot = False
        else:
            self._journal.put(
                POOL_SNAP_NAMESPACE,
                self._journal_key,
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
                durable=False,
            )
            self._has_snapshot = True

    def discard_journal(self) -> None:
        """Drop journalled state when the shard is retired."""
        if self._journal is not None:
            self._journal.delete(POOL_SNAP_NAMESPACE, self._journal_key)
            self.replay.clear()


class WorkerPool:
    """A pool of long-lived checker processes fed by the audit event loop.

    Parameters
    ----------
    size:
        Number of worker processes.
    snapshot_every:
        Piggyback a checker snapshot on a feed every N windows per shard
        (bounds the failover replay log; ``0`` disables piggybacking, leaving
        the replay log to grow until a session checkpoint resets it).
    replicas:
        Ring points per worker for the consistent-hash router.
    mp_context:
        ``multiprocessing`` start-method name (default: ``fork`` where
        available, else ``spawn``).
    crash_loop_threshold, crash_loop_window_s:
        Crash-loop breaker: after ``crash_loop_threshold`` respawns of one
        worker id within ``crash_loop_window_s`` seconds, the pool stops
        respawning it and every request routed there raises
        :class:`~repro.core.errors.WorkerCrashLoopError` — a deterministic
        crasher (poisoned input, broken native lib) must surface as a typed
        error on the affected shards, not as an infinite respawn spin that
        also starves healthy sessions.  Respawns inside the window back off
        exponentially.  ``crash_loop_threshold=0`` disables the breaker.
    journal:
        Optional :class:`repro.state.StateStore`: per-shard failover
        snapshots and replay logs are persisted there (``pool-snap`` /
        ``pool-log`` namespaces) instead of parent memory, read back only
        on failover or resize.  Stale journal entries from a previous run
        are swept at :meth:`start`.

    The pool is asyncio-native: create it on the event loop that will use it
    and ``await`` :meth:`start` before the first feed.
    """

    def __init__(
        self,
        size: int,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        replicas: Optional[int] = None,
        mp_context: Optional[str] = None,
        crash_loop_threshold: int = DEFAULT_CRASH_LOOP_THRESHOLD,
        crash_loop_window_s: float = DEFAULT_CRASH_LOOP_WINDOW_S,
        journal=None,
    ):
        from .routing import DEFAULT_REPLICAS, HashRing

        if size < 1:
            raise ServiceError(f"worker pool size must be >= 1, got {size!r}")
        if snapshot_every < 0:
            raise ServiceError(
                f"snapshot_every must be >= 0, got {snapshot_every!r}"
            )
        self.size = size
        self.snapshot_every = snapshot_every
        #: Optional :class:`repro.state.StateStore` holding the failover
        #: snapshots and replay logs instead of parent memory.
        self.journal = journal
        self.replicas = replicas if replicas is not None else DEFAULT_REPLICAS
        self._ring_class = HashRing
        self._ctx = (
            multiprocessing.get_context(mp_context)
            if mp_context is not None
            else _default_context()
        )
        self._workers: Dict[int, _WorkerHandle] = {}
        self._ring = None
        self._shards: Dict[Tuple, _ShardState] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = False
        self._stopping = False
        self._recoveries: Dict[int, asyncio.Task] = {}
        self._resize_lock = asyncio.Lock()
        self._resizing: Optional[asyncio.Future] = None
        self._active_feeds = 0
        self._feeds_idle: Optional[asyncio.Event] = None
        self._restarts = 0
        if crash_loop_threshold < 0:
            raise ServiceError(
                f"crash_loop_threshold must be >= 0, got {crash_loop_threshold!r}"
            )
        if crash_loop_window_s <= 0:
            raise ServiceError(
                f"crash_loop_window_s must be positive, got {crash_loop_window_s!r}"
            )
        self.crash_loop_threshold = crash_loop_threshold
        self.crash_loop_window_s = crash_loop_window_s
        #: Recent respawn times per worker id (pruned to the breaker window).
        self._respawn_times: Dict[int, List[float]] = {}
        #: Worker ids the breaker tripped on: never respawned, always raise.
        self._crash_looping: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker processes and build the routing ring."""
        if self._started:
            raise ServiceError("worker pool already started")
        if self.journal is not None:
            # Failover state is only meaningful within one parent process:
            # sweep whatever a previous (crashed) run left in the store.
            for namespace in (POOL_SNAP_NAMESPACE, POOL_LOG_NAMESPACE):
                for key in self.journal.keys(namespace):
                    self.journal.delete(namespace, key)
        self._loop = asyncio.get_running_loop()
        self._feeds_idle = asyncio.Event()
        self._feeds_idle.set()
        for worker_id in range(self.size):
            self._spawn(worker_id, generation=0)
        self._ring = self._ring_class(range(self.size), replicas=self.replicas)
        self._started = True
        # One ping per worker: surfaces a worker that died on arrival now,
        # not on the first session's first window.
        await asyncio.gather(
            *(handle.request("ping") for handle in self._workers.values())
        )

    async def stop(self) -> None:
        """Stop every worker process (shards and their state are dropped)."""
        self._stopping = True
        for task in list(self._recoveries.values()):
            task.cancel()
        if self._recoveries:
            await asyncio.gather(*self._recoveries.values(), return_exceptions=True)
        self._recoveries.clear()
        await asyncio.gather(
            *(handle.stop() for handle in self._workers.values()),
            return_exceptions=True,
        )
        for state in self._shards.values():
            state.discard_journal()
        self._workers.clear()
        self._shards.clear()

    def _spawn(self, worker_id: int, generation: int) -> _WorkerHandle:
        handle = _WorkerHandle(worker_id, generation, self._ctx, self._loop)
        handle.on_death = self._on_worker_death
        handle.ready.set()
        self._workers[worker_id] = handle
        return handle

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_pids(self) -> Dict[int, int]:
        """Live worker process ids by worker id (tests kill through this)."""
        return {
            worker_id: handle.process.pid
            for worker_id, handle in self._workers.items()
            if handle.process.pid is not None
        }

    def home_of(self, session_id: str, key: Hashable) -> int:
        """The worker id a shard routes to under the current ring."""
        return self._ring.route((session_id, key))

    def shard_count(self) -> int:
        """Shards currently registered across all sessions."""
        return len(self._shards)

    def worker_stats(self) -> Tuple[WorkerStats, ...]:
        """One :class:`WorkerStats` row per worker, in worker-id order."""
        owned: Dict[int, int] = {worker_id: 0 for worker_id in self._workers}
        if self._ring is not None:
            for shard_id in self._shards:
                home = self._ring.route(shard_id)
                if home in owned:
                    owned[home] += 1
        return tuple(
            WorkerStats(
                worker_id=worker_id,
                pid=handle.process.pid,
                alive=not handle.dead and handle.process.is_alive(),
                shards=owned.get(worker_id, 0),
                batches=handle.batches,
                ops=handle.ops,
                snapshots=handle.snapshots,
                restarts=handle.generation,
                restored_shards=handle.restored_shards,
            )
            for worker_id, handle in sorted(self._workers.items())
        )

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    async def feed_window(
        self,
        session_id: str,
        batches: Sequence[Tuple[Hashable, Sequence[Operation]]],
        *,
        mode: str = "check",
        modes: Optional[Dict[Hashable, str]] = None,
        config: Optional[Dict] = None,
    ) -> Dict[Hashable, object]:
        """Feed one closed window's per-register batches; return verdicts.

        ``batches`` holds ``(register_key, ops-in-stream-order)`` pairs for
        every register the window touched; ``config`` is the checker
        configuration for shards this call sees first.  Batches ship to their
        home workers concurrently; worker death mid-call triggers transparent
        failover and a retry, so the caller only ever sees complete windows.

        ``modes`` overrides ``mode`` per register key.  The pooled tier path
        uses it for per-shard escalation: only the shards the parent's tier
        state flags pay the authoritative ``check_now``, the rest answer with
        the O(1) ``peek``.  Per-key modes are journalled with their batches,
        so failover replay re-issues the original cadence per shard.
        """
        if not self._started:
            raise ServiceError("worker pool is not started")
        await self._feed_gate()
        try:
            by_worker: Dict[int, List[Tuple[Hashable, Sequence[Operation]]]] = {}
            for key, ops in batches:
                shard_id = (session_id, key)
                if shard_id not in self._shards:
                    if config is None:
                        raise ServiceError(
                            f"shard {shard_id!r} is new but no checker config "
                            "was provided"
                        )
                    self._shards[shard_id] = _ShardState(
                        session_id, key, dict(config), journal=self.journal
                    )
                home = self._ring.route(shard_id)
                by_worker.setdefault(home, []).append((key, ops))
            results = await asyncio.gather(
                *(
                    self._feed_worker(
                        worker_id, session_id, worker_batches, mode, modes
                    )
                    for worker_id, worker_batches in by_worker.items()
                )
            )
        finally:
            self._feed_done()
        verdicts: Dict[Hashable, object] = {}
        for chunk in results:
            verdicts.update(chunk)
        return verdicts

    async def _feed_worker(
        self,
        worker_id: int,
        session_id: str,
        batches: List[Tuple[Hashable, Sequence[Operation]]],
        mode: str,
        modes: Optional[Dict[Hashable, str]] = None,
    ) -> Dict[Hashable, object]:
        entries = []
        for key, ops in batches:
            shard_id = (session_id, key)
            state = self._shards[shard_id]
            fresh = not state.has_snapshot and not state.replay
            want_snapshot = (
                self.snapshot_every > 0
                and state.since_snapshot + 1 >= self.snapshot_every
            )
            key_mode = mode if modes is None else modes.get(key, mode)
            entries.append(
                (shard_id, key_mode, state.config if fresh else None, want_snapshot)
            )
        blob = encode_feed_batches(batches)
        replies = await self._request_with_failover(
            worker_id, "feed", entries, blob
        )
        handle = self._workers[worker_id]
        handle.batches += len(batches)
        handle.ops += sum(len(ops) for _key, ops in batches)
        verdicts: Dict[Hashable, object] = {}
        for (key, ops), (verdict, snapshot) in zip(batches, replies):
            shard_id = (session_id, key)
            state = self._shards[shard_id]
            if snapshot is not None:
                state.snapshot = snapshot
                state.replay.clear()
                state.since_snapshot = 0
                handle.snapshots += 1
            else:
                # Log this batch alone (not the worker-level multi-shard
                # blob): failover replays per shard, to possibly different
                # new homes.  The shard's own mode is what replay must
                # re-issue — state identity depends on the check cadence.
                key_mode = mode if modes is None else modes.get(key, mode)
                state.replay.append((encode_feed_batches([(key, ops)]), key_mode))
                state.since_snapshot += 1
            verdicts[key] = verdict
        return verdicts

    async def _request_with_failover(self, worker_id: int, command: str, *args):
        """Issue a request, riding out worker deaths via respawn + replay."""
        for _attempt in range(_MAX_ATTEMPTS):
            handle = await self._ready_handle(worker_id)
            try:
                return await handle.request(command, *args)
            except _WorkerDied:
                continue  # the death callback respawns; wait and retry
        raise ServiceError(
            f"worker {worker_id} keeps dying; giving up after "
            f"{_MAX_ATTEMPTS} attempts"
        )

    async def _ready_handle(self, worker_id: int) -> _WorkerHandle:
        deadline = time.monotonic() + RECOVERY_TIMEOUT_S
        while True:
            if worker_id in self._crash_looping:
                raise WorkerCrashLoopError(
                    f"worker {worker_id} crash-looped "
                    f"({self.crash_loop_threshold} respawns within "
                    f"{self.crash_loop_window_s:.0f}s); its shards are "
                    "unavailable until the pool is resized or restarted"
                )
            handle = self._workers.get(worker_id)
            if handle is None:
                raise ServiceError(f"no worker {worker_id} in the pool")
            if not handle.dead and handle.ready.is_set():
                return handle
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"worker {worker_id} did not recover within "
                    f"{RECOVERY_TIMEOUT_S:.0f}s"
                )
            try:
                await asyncio.wait_for(handle.ready.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                continue

    async def _feed_gate(self) -> None:
        while self._resizing is not None:
            await self._resizing
        self._active_feeds += 1
        self._feeds_idle.clear()

    def _feed_done(self) -> None:
        self._active_feeds -= 1
        if self._active_feeds == 0:
            self._feeds_idle.set()

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _on_worker_death(self, worker_id: int, generation: int) -> None:
        if self._stopping:
            return
        current = self._workers.get(worker_id)
        if current is None or current.generation != generation:
            return  # already replaced
        if worker_id in self._recoveries:
            return
        task = self._loop.create_task(self._recover(worker_id, generation))
        self._recoveries[worker_id] = task
        task.add_done_callback(lambda _t: self._recoveries.pop(worker_id, None))

    async def _recover(self, worker_id: int, dead_generation: int) -> None:
        """Respawn a dead worker and rebuild every shard it homed."""
        old = self._workers.get(worker_id)
        if old is None or old.generation != dead_generation:
            return
        # Crash-loop breaker: count respawns inside the sliding window and
        # back off exponentially between them; past the threshold, stop
        # respawning and let _ready_handle fail this worker's shards typed.
        now = time.monotonic()
        recent = self._respawn_times.setdefault(worker_id, [])
        recent[:] = [t for t in recent if now - t <= self.crash_loop_window_s]
        if self.crash_loop_threshold and len(recent) >= self.crash_loop_threshold:
            self._crash_looping.add(worker_id)
            old.ready.set()  # wake parked feeders so they observe the verdict
            return
        recent.append(now)
        if len(recent) > 1:
            await asyncio.sleep(
                min(
                    _RESPAWN_BACKOFF_BASE_S * 2 ** (len(recent) - 2),
                    _RESPAWN_BACKOFF_CAP_S,
                )
            )
        self._restarts += 1
        handle = self._spawn(worker_id, generation=dead_generation + 1)
        handle.ready.clear()  # hold feeds until the shards are rebuilt
        try:
            entries = []
            for shard_id, state in self._shards.items():
                if self._ring.route(shard_id) != worker_id:
                    continue
                entries.append(
                    (shard_id, state.config, state.snapshot, list(state.replay))
                )
            if entries:
                restored = await handle.request("restore", entries)
                handle.restored_shards += restored
        except _WorkerDied:
            # The replacement died during restore; its own death callback
            # will start the next recovery round.
            return
        finally:
            handle.ready.set()

    # ------------------------------------------------------------------
    # Resizing
    # ------------------------------------------------------------------
    async def resize(self, new_size: int) -> int:
        """Grow or shrink the pool; returns the number of migrated shards.

        Feeds are quiesced for the duration (windows already in flight
        complete first), moved shards are migrated snapshot-first — from the
        old home when it is alive, from the parent's snapshot+replay copy
        when it is not — and the ring swap is atomic from the feeders'
        point of view.
        """
        if new_size < 1:
            raise ServiceError(f"worker pool size must be >= 1, got {new_size!r}")
        if not self._started:
            raise ServiceError("worker pool is not started")
        async with self._resize_lock:
            if new_size == self.size and not self._crash_looping:
                return 0
            # Gate new feeds, then wait out the in-flight ones.
            self._resizing = self._loop.create_future()
            try:
                await self._feeds_idle.wait()
                old_ring = self._ring
                new_ids = list(range(new_size))
                for worker_id in new_ids:
                    existing = self._workers.get(worker_id)
                    if existing is None:
                        self._spawn(worker_id, generation=0)
                    elif worker_id in self._crash_looping:
                        # A resize is the operator's reset lever: a worker id
                        # the breaker gave up on gets a clean slate — a fresh
                        # process rebuilt from the parent's shard copies.
                        self._crash_looping.discard(worker_id)
                        self._respawn_times.pop(worker_id, None)
                        handle = self._spawn(
                            worker_id, generation=existing.generation + 1
                        )
                        entries = [
                            (shard_id, state.config, state.snapshot,
                             list(state.replay))
                            for shard_id, state in self._shards.items()
                            if old_ring.route(shard_id) == worker_id
                        ]
                        if entries:
                            restored = await handle.request("restore", entries)
                            handle.restored_shards += restored
                new_ring = old_ring.resized(new_ids)
                moved = [
                    shard_id
                    for shard_id in self._shards
                    if old_ring.route(shard_id) != new_ring.route(shard_id)
                ]
                # Pull authoritative snapshots from the old homes first...
                restores: Dict[int, List] = {}
                drops: Dict[int, List] = {}
                for shard_id in moved:
                    state = self._shards[shard_id]
                    old_home = old_ring.route(shard_id)
                    new_home = new_ring.route(shard_id)
                    replay: List[Tuple[bytes, str]] = []
                    old_handle = self._workers.get(old_home)
                    snapshot = None
                    if old_handle is not None and not old_handle.dead:
                        try:
                            (snapshot,) = await old_handle.request(
                                "snapshot", [shard_id]
                            )
                        except (_WorkerDied, ServiceError):
                            snapshot = None
                    if snapshot is None:
                        # Old home unavailable: rebuild from the parent copy.
                        snapshot = state.snapshot
                        replay = list(state.replay)
                    else:
                        state.snapshot = snapshot
                        state.replay.clear()
                        state.since_snapshot = 0
                    restores.setdefault(new_home, []).append(
                        (shard_id, state.config, snapshot, replay)
                    )
                    drops.setdefault(old_home, []).append(shard_id)
                # ...then install them on the new homes and drop the old copies.
                for new_home, entries in restores.items():
                    handle = self._workers[new_home]
                    restored = await handle.request("restore", entries)
                    handle.restored_shards += restored
                for old_home, shard_ids in drops.items():
                    old_handle = self._workers.get(old_home)
                    if old_handle is not None and not old_handle.dead:
                        try:
                            await old_handle.request("drop", shard_ids)
                        except (_WorkerDied, ServiceError):
                            pass
                self._ring = new_ring
                self.size = new_size
                # Retire surplus workers only after the ring swap.
                for worker_id in [w for w in self._workers if w >= new_size]:
                    handle = self._workers.pop(worker_id)
                    await handle.stop()
                return len(moved)
            finally:
                resizing = self._resizing
                self._resizing = None
                resizing.set_result(None)

    # ------------------------------------------------------------------
    # Session-scoped operations
    # ------------------------------------------------------------------
    def _session_shards(self, session_id: str, keys: Sequence[Hashable]):
        by_worker: Dict[int, List[Tuple]] = {}
        for key in keys:
            shard_id = (session_id, key)
            by_worker.setdefault(self._ring.route(shard_id), []).append(shard_id)
        return by_worker

    async def finish_session(
        self, session_id: str, keys: Sequence[Hashable]
    ) -> Dict[Hashable, object]:
        """Finish every shard of a session; returns final per-register results."""
        by_worker = self._session_shards(session_id, keys)

        async def finish_on(worker_id: int, shard_ids: List[Tuple]):
            results = await self._request_with_failover(
                worker_id, "finish", shard_ids
            )
            return zip(shard_ids, results)

        gathered = await asyncio.gather(
            *(finish_on(w, ids) for w, ids in by_worker.items())
        )
        results: Dict[Hashable, object] = {}
        for chunk in gathered:
            for (session, key), result in chunk:
                results[key] = result
                retired = self._shards.pop((session, key), None)
                if retired is not None:
                    retired.discard_journal()
        return results

    async def snapshot_session(
        self, session_id: str, keys: Sequence[Hashable]
    ) -> List[Tuple[Hashable, Dict]]:
        """Fresh checker snapshots for every shard of a session, in key order.

        Doubles as a replay-log reset: the returned snapshots become the
        shards' failover baselines.
        """
        by_worker = self._session_shards(session_id, keys)

        async def snap_on(worker_id: int, shard_ids: List[Tuple]):
            states = await self._request_with_failover(
                worker_id, "snapshot", shard_ids
            )
            return zip(shard_ids, states)

        gathered = await asyncio.gather(
            *(snap_on(w, ids) for w, ids in by_worker.items())
        )
        by_key: Dict[Hashable, Dict] = {}
        for chunk in gathered:
            for (session, key), checker_state in chunk:
                by_key[key] = checker_state
                state = self._shards.get((session, key))
                if state is not None:
                    state.snapshot = checker_state
                    state.replay.clear()
                    state.since_snapshot = 0
        return [(key, by_key[key]) for key in keys]

    async def restore_session(
        self,
        session_id: str,
        entries: Sequence[Tuple[Hashable, Dict]],
        config: Dict,
    ) -> None:
        """Install checkpointed checker states for a resumed session."""
        by_worker: Dict[int, List] = {}
        for key, checker_state in entries:
            shard_id = (session_id, key)
            state = _ShardState(session_id, key, dict(config), journal=self.journal)
            state.snapshot = checker_state
            self._shards[shard_id] = state
            by_worker.setdefault(self._ring.route(shard_id), []).append(
                (shard_id, state.config, checker_state, [])
            )
        for worker_id, worker_entries in by_worker.items():
            restored = await self._request_with_failover(
                worker_id, "restore", worker_entries
            )
            self._workers[worker_id].restored_shards += restored

    async def drop_session(self, session_id: str, keys: Sequence[Hashable]) -> None:
        """Discard a session's shards (disconnect without ``end``)."""
        by_worker = self._session_shards(session_id, keys)
        for key in keys:
            retired = self._shards.pop((session_id, key), None)
            if retired is not None:
                retired.discard_journal()
        for worker_id, shard_ids in by_worker.items():
            handle = self._workers.get(worker_id)
            if handle is None or handle.dead:
                continue
            try:
                await handle.request("drop", shard_ids)
            except (_WorkerDied, ServiceError):
                pass


# ----------------------------------------------------------------------
# Pooled sessions
# ----------------------------------------------------------------------
class PooledStreamSession:
    """The pool-backed twin of :class:`~repro.engine.streaming.StreamSession`.

    Same contract — push operations, get a :class:`WindowReport` per closed
    window, :meth:`finish` for the batch-equal final report, checkpoint via
    :meth:`snapshot`/:meth:`restore` — but the checkers live on pool workers
    and the feed/finish/snapshot paths are coroutines.  Snapshots use the
    exact schema of the in-process ``StreamSession``, so a checkpoint written
    by a pooled server resumes on a single-process one and vice versa.

    With a tiered :class:`SessionConfig` the parent keeps the
    :class:`~repro.engine.tiering.TierStreamState` and routes each window's
    shards individually: escalated shards are fed in ``check`` mode, the
    rest in ``peek`` — so only hot shards pay the authoritative per-window
    re-check, and a worker owning cold shards does O(1) work per window.
    Soundness is inherited from the worker protocol: a NO a ``peek`` missed
    is latched inside the checker and surfaces on the next ``peek``, and
    :meth:`finish` always runs every checker's authoritative ``finish``.
    """

    def __init__(self, pool: WorkerPool, session_id: str, config: SessionConfig):
        self.pool = pool
        self.session_id = session_id
        self.config = config
        self.k = config.k
        self._tier_policy = get_tier_policy(config.tier)
        self._tier_name = (
            self._tier_policy.name if self._tier_policy is not None else "exact"
        )
        self._tier_state = (
            TierStreamState(self._tier_policy, config.k)
            if self._tier_policy is not None
            else None
        )
        self._window_policy = config.window_policy()
        self._assembler = WindowAssembler(self._window_policy)
        self._key_order: List[Hashable] = []
        self._known_keys = set()
        self._timeline: List[WindowReport] = []
        self._ops_fed = 0
        self._elapsed_prior = 0.0
        self._t0 = time.perf_counter()
        self._finished = False

    # -- properties mirroring StreamSession -----------------------------
    @property
    def ops_fed(self) -> int:
        return self._ops_fed

    @property
    def num_windows(self) -> int:
        return len(self._timeline)

    @property
    def num_registers(self) -> int:
        return len(self._key_order)

    @property
    def timeline(self) -> Tuple[WindowReport, ...]:
        return tuple(self._timeline)

    @property
    def finished(self) -> bool:
        return self._finished

    def _checker_config(self) -> Dict:
        return {"k": self.config.k, "algorithm": self.config.algorithm}

    # -- feeding ---------------------------------------------------------
    async def feed(self, op: Operation) -> Optional[WindowReport]:
        """Ingest one operation; awaits the pool when a window closes."""
        if self._finished:
            raise VerificationError(
                "session already finished; open a new session for a new stream"
            )
        self._ops_fed += 1
        window = self._assembler.feed(op)
        if window is None:
            return None
        return await self._handle(window)

    async def _handle(self, window: Window) -> WindowReport:
        t0 = time.perf_counter()
        by_key: Dict[Hashable, List[Operation]] = {}
        for op in window.fresh_ops:
            by_key.setdefault(op.key, []).append(op)
        for key in by_key:
            if key not in self._known_keys:
                self._known_keys.add(key)
                self._key_order.append(key)
        tiers: Dict[Hashable, str] = {}
        escalations: Dict[Hashable, Tuple[str, ...]] = {}
        modes: Optional[Dict[Hashable, str]] = None
        if self._tier_state is not None:
            # Parent-side routing: decide per shard before the batches ship.
            # There is no free checker peek on this side of the pipe, so the
            # checker-alarm trigger rides on verdicts already seen — a NO
            # returned by an earlier window's peek latches via note_verdict
            # below and escalates this shard from here on.
            modes = {}
            for key, register_ops in by_key.items():
                key_mode, triggers = self._tier_state.decide(key, register_ops)
                modes[key] = key_mode
                tiers[key] = key_mode
                if triggers:
                    escalations[key] = tuple(triggers)
        verdicts = await self.pool.feed_window(
            self.session_id,
            list(by_key.items()),
            mode="check",
            modes=modes,
            config=self._checker_config(),
        )
        ordered = {key: verdicts[key] for key in by_key if key in verdicts}
        if self._tier_state is not None:
            for key, verdict in ordered.items():
                if verdict is not None:
                    self._tier_state.note_verdict(key, verdict.result.is_k_atomic)
        report = WindowReport(
            stats=WindowStats(
                index=window.index,
                num_ops=window.num_fresh,
                num_registers=len(by_key),
                t_low=window.t_low,
                t_high=window.t_high,
                elapsed_s=time.perf_counter() - t0,
            ),
            verdicts=ordered,
            tiers=tiers,
            escalations=escalations,
        )
        self._timeline.append(report)
        return report

    async def finish(self) -> StreamVerificationReport:
        """Seal the stream; final verdicts equal batch verification exactly."""
        if self._finished:
            raise VerificationError("session already finished")
        tail = self._assembler.flush()
        if tail is not None:
            await self._handle(tail)
        self._finished = True
        results = await self.pool.finish_session(self.session_id, self._key_order)
        return StreamVerificationReport(
            k=self.k,
            mode="rolling",
            window=self._window_policy.describe(),
            results={key: results[key] for key in self._key_order},
            timeline=tuple(self._timeline),
            executor="pool",
            jobs=self.pool.size,
            elapsed_s=self._elapsed(),
            tier=self._tier_name,
        )

    # -- checkpointing ---------------------------------------------------
    async def snapshot(self) -> Dict:
        """Capture the session in ``StreamSession.snapshot`` schema."""
        checkers = await self.pool.snapshot_session(self.session_id, self._key_order)
        state = {
            "k": self.k,
            "algorithm": self.config.algorithm,
            "window": (
                self._window_policy.mode,
                self._window_policy.size,
                self._window_policy.overlap,
            ),
            "assembler": self._assembler.snapshot(),
            "checkers": list(checkers),
            "timeline": list(self._timeline),
            "ops_fed": self._ops_fed,
            "elapsed_s": self._elapsed(),
            "finished": self._finished,
        }
        if self._tier_state is not None:
            # Same conditional key as StreamSession.snapshot: default
            # checkpoints stay byte-identical to pre-tiering payloads.
            state["tier"] = self._tier_state.snapshot()
        return state

    async def restore(self, state: Dict) -> None:
        """Rehydrate a :meth:`snapshot` (or in-process ``StreamSession``) state."""
        if state["k"] != self.k:
            raise VerificationError(
                f"snapshot verifies k={state['k']}; this session is for k={self.k}"
            )
        if state["algorithm"] != self.config.algorithm:
            raise VerificationError(
                f"snapshot used algorithm={state['algorithm']!r}; this session "
                f"is configured with {self.config.algorithm!r}"
            )
        self._assembler.restore(state["assembler"])
        if self._tier_policy is not None:
            # A pre-tiering (or untiered) snapshot restarts the escalation
            # state — conservative (extra checks), never unsound.
            self._tier_state = (
                TierStreamState.restore(self._tier_policy, state["tier"])
                if "tier" in state
                else TierStreamState(self._tier_policy, self.k)
            )
        self._key_order = [key for key, _state in state["checkers"]]
        self._known_keys = set(self._key_order)
        self._timeline = list(state["timeline"])
        self._ops_fed = state["ops_fed"]
        self._elapsed_prior = state["elapsed_s"]
        self._t0 = time.perf_counter()
        self._finished = state["finished"]
        await self.pool.restore_session(
            self.session_id, state["checkers"], self._checker_config()
        )
        # Buffered (not-yet-fed) operations carry foreign ids; fresh decoder
        # ids in this process must never collide with them.
        ensure_op_ids_above(
            max((op.op_id for op in state["assembler"]["buffer"]), default=-1)
        )

    async def close(self) -> None:
        """Drop this session's worker-side state (abandoned stream)."""
        if not self._finished and self._key_order:
            await self.pool.drop_session(self.session_id, self._key_order)

    def _elapsed(self) -> float:
        return self._elapsed_prior + (time.perf_counter() - self._t0)


class PooledAuditSession(AuditSession):
    """An :class:`AuditSession` whose checkers run on a :class:`WorkerPool`.

    The server drives sessions through the ``a``-prefixed coroutine surface
    (:meth:`afeed` / :meth:`afinish` / :meth:`acheckpoint_payload` /
    :meth:`aclose`), which the base class implements by delegating to its
    synchronous methods; this subclass overrides them to await the pool.
    Checkpoint payloads keep the single-process schema, so sessions migrate
    freely between pooled and in-process servers across restarts.
    """

    # -- constructors ----------------------------------------------------
    @classmethod
    def start(
        cls, session_id: str, config: SessionConfig, pool: WorkerPool
    ) -> "PooledAuditSession":
        """Open a fresh pooled session."""
        stream = PooledStreamSession(pool, session_id, config)
        return cls(session_id, config, stream)

    @classmethod
    async def resume(cls, payload: Dict, pool: WorkerPool) -> "PooledAuditSession":
        """Rehydrate a checkpoint payload onto the pool."""
        try:
            session_id = payload["session_id"]
            config = SessionConfig.from_dict(payload["config"])
            stream_state = payload["stream"]
        except KeyError as exc:
            raise ServiceError(f"malformed checkpoint payload: missing {exc}") from exc
        stream = PooledStreamSession(pool, session_id, config)
        try:
            await stream.restore(stream_state)
        except VerificationError as exc:
            raise ServiceError(str(exc)) from exc
        session = cls(
            session_id,
            config,
            stream,
            resumed=True,
            checkpoints=payload.get("checkpoints", 0),
            elapsed_prior=payload.get("elapsed_s", 0.0),
        )
        session.alarmed_keys = set(payload.get("alarmed_keys", ()))
        session.window_log = [dict(frame) for frame in payload.get("window_log", ())]
        tiering = payload.get("tiering") or {}
        session.escalations = int(tiering.get("escalations", 0))
        session.windows_bypassed = int(tiering.get("windows_bypassed", 0))
        return session

    # -- async surface ---------------------------------------------------
    async def afeed(self, op: Operation) -> Optional[WindowReport]:
        report = await self.stream.feed(op)
        if report is not None:
            self.alarmed_keys.update(report.alarms())
            self._note_tiering(report)
        return report

    async def afinish(self) -> StreamVerificationReport:
        report = await self.stream.finish()
        self.alarmed_keys.update(report.failures)
        self.finished = True
        return report

    async def acheckpoint_payload(self) -> Dict:
        payload = {
            "session_id": self.session_id,
            "config": self.config.to_dict(),
            "stream": await self.stream.snapshot(),
            "checkpoints": self.checkpoints + 1,
            "alarmed_keys": list(self.alarmed_keys),
            "window_log": [dict(frame) for frame in self.window_log],
            "elapsed_s": self.elapsed_s,
        }
        if self.config.tier != "exact":
            payload["tiering"] = {
                "escalations": self.escalations,
                "windows_bypassed": self.windows_bypassed,
            }
        return payload

    async def aclose(self) -> None:
        await self.stream.close()

    # -- guard rails -----------------------------------------------------
    def feed(self, op: Operation):  # pragma: no cover - defensive
        raise ServiceError("pooled sessions are async; use afeed()")

    def finish(self):  # pragma: no cover - defensive
        raise ServiceError("pooled sessions are async; use afinish()")

    def checkpoint_payload(self):  # pragma: no cover - defensive
        raise ServiceError("pooled sessions are async; use acheckpoint_payload()")
