"""Hostile workload generators driven by the unified fault-plan schema.

These generators grow the scenario corpus beyond the well-behaved
sloppy-quorum regime: hot-key Zipfian traffic (contention concentrated on a
few registers), indeterminate-operation storms (writes whose completion is
never observed, extended past the end of the trace as the Jepsen adapter
models them), and per-client clock skew applied to already-recorded traces.
Every generator takes an explicit random stream or a seeded
:class:`~repro.chaos.plan.FaultPlan`, so each hostile scenario is exactly
reproducible — and :func:`dump_chaos_fixtures` exports any of them as
Jepsen/Porcupine fixtures for cross-validation by external checkers.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.errors import SimulationError
from ..core.operation import Operation, read, write
from ..simulation.clock import ClockModel, SkewedClocks
from .spec import ZipfianKeys
from .synthetic import practical_history


def _restamped(op: Operation, start: float, finish: float) -> Operation:
    """A copy of ``op`` with a new interval (and a fresh op id)."""
    factory = write if op.is_write else read
    return factory(op.value, start, finish, key=op.key, client=op.client)

__all__ = [
    "hot_key_trace",
    "indeterminate_storm_trace",
    "apply_clock_skew",
    "history_from_plan",
    "dump_chaos_fixtures",
]


def hot_key_trace(
    rng: random.Random,
    *,
    num_keys: int = 16,
    num_operations: int = 800,
    theta: float = 0.99,
    num_clients: int = 8,
    write_ratio: float = 0.2,
    staleness_probability: float = 0.05,
    max_staleness: int = 1,
    key_prefix: str = "hot",
) -> List[Operation]:
    """A trace whose per-register traffic follows a Zipf distribution.

    ``num_operations`` operations are allotted to ``num_keys`` registers by
    Zipfian sampling (``theta ~ 0.99`` is the YCSB default), then each
    register gets an anomaly-free :func:`practical_history` of its share —
    so the hottest registers carry most of the contention, the regime where
    sloppy quorums are most likely to expose staleness.
    """
    if num_operations < 2:
        raise SimulationError("hot_key_trace needs at least two operations")
    selector = ZipfianKeys(num_keys, theta=theta)
    counts: Dict[str, int] = {}
    for _ in range(num_operations):
        key = selector.select(rng)
        counts[key] = counts.get(key, 0) + 1
    ops: List[Operation] = []
    for key in sorted(counts):
        register_rng = random.Random(rng.getrandbits(64))
        history = practical_history(
            register_rng,
            max(2, counts[key]),
            num_clients=num_clients,
            write_ratio=write_ratio,
            staleness_probability=staleness_probability,
            max_staleness=max_staleness,
            key=f"{key_prefix}-{key}",
        )
        ops.extend(history.operations)
    ops.sort(key=lambda op: (op.start, op.op_id))
    return ops


def indeterminate_storm_trace(
    rng: random.Random,
    *,
    num_keys: int = 4,
    ops_per_key: int = 120,
    fraction: float = 0.15,
    num_clients: int = 8,
    write_ratio: float = 0.3,
    key_prefix: str = "storm",
) -> List[Operation]:
    """A trace where a fraction of writes never visibly complete.

    An indeterminate write is one whose acknowledgement the collector never
    saw; following the Jepsen ``info`` convention (see
    :mod:`repro.io.interop`), its interval is extended past the last event of
    the trace, making it concurrent with everything after its invocation.
    The affected writes are chosen by the given stream, ``fraction`` of all
    writes in expectation.
    """
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError("fraction must lie in [0, 1]")
    ops: List[Operation] = []
    for i in range(num_keys):
        register_rng = random.Random(rng.getrandbits(64))
        history = practical_history(
            register_rng,
            max(2, ops_per_key),
            num_clients=num_clients,
            write_ratio=write_ratio,
            key=f"{key_prefix}-{i:04d}",
        )
        ops.extend(history.operations)
    horizon = max(op.finish for op in ops) + 1.0
    stormed: List[Operation] = []
    for op in ops:
        if op.is_write and rng.random() < fraction:
            op = _restamped(op, op.start, horizon)
        stormed.append(op)
    stormed.sort(key=lambda op: (op.start, op.op_id))
    return stormed


def apply_clock_skew(
    ops: List[Operation], model: ClockModel
) -> List[Operation]:
    """Re-stamp a trace through a per-client clock model.

    Every operation's start/finish is replaced by what *its own client's*
    clock would have recorded; intervals that a hostile drift would invert
    are clamped to a minimal positive length (a collector would never emit a
    response before its invocation).  Returns new operations in the skewed
    start order — the stream order an auditor consuming these clocks would
    actually see.
    """
    skewed: List[Operation] = []
    for op in ops:
        start = model.stamp(op.client, op.start)
        finish = model.stamp(op.client, op.finish)
        if finish <= start:
            finish = start + 1e-9
        skewed.append(_restamped(op, start, finish))
    skewed.sort(key=lambda op: (op.start, op.op_id))
    return skewed


def history_from_plan(plan, *, rng: Optional[random.Random] = None) -> List[Operation]:
    """Build one hostile trace from the workload clauses of a fault plan.

    ``hot_key`` and ``indeterminate_storm`` clauses each contribute a block
    of registers (key prefixes carry the clause index, so composed plans
    never collide); every ``clock_skew`` clause then re-stamps the whole
    assembled trace through a :class:`~repro.simulation.clock.SkewedClocks`
    model seeded from the plan.  A plan with no workload clauses yields an
    empty list.
    """
    from ..chaos.plan import DOMAIN_WORKLOAD

    ops: List[Operation] = []
    skews: List[Tuple[int, object]] = []
    for index, clause in plan.clauses_for(DOMAIN_WORKLOAD):
        clause_rng = plan.rng_for(index)
        if rng is not None:
            clause_rng = random.Random(rng.getrandbits(64))
        if clause.kind == "hot_key":
            ops.extend(
                hot_key_trace(
                    clause_rng,
                    num_keys=int(clause.param("num_keys", 16)),
                    num_operations=int(clause.param("num_operations", 800)),
                    theta=float(clause.param("theta", 0.99)),
                    num_clients=int(clause.param("num_clients", 8)),
                    write_ratio=float(clause.param("write_ratio", 0.2)),
                    key_prefix=f"c{index}-hot",
                )
            )
        elif clause.kind == "indeterminate_storm":
            ops.extend(
                indeterminate_storm_trace(
                    clause_rng,
                    num_keys=int(clause.param("num_keys", 4)),
                    ops_per_key=int(clause.param("ops_per_key", 120)),
                    fraction=float(clause.param("fraction", 0.15)),
                    num_clients=int(clause.param("num_clients", 8)),
                    key_prefix=f"c{index}-storm",
                )
            )
        elif clause.kind == "clock_skew":
            skews.append((index, clause))
        else:  # pragma: no cover - registry and this dispatch move together
            raise SimulationError(
                f"workload clause {clause.kind!r} is not supported here"
            )
    for index, clause in skews:
        model = SkewedClocks(
            max_skew_ms=float(clause.param("max_skew_ms", 0.0)),
            drift_ppm=float(clause.param("drift_ppm", 0.0)),
            seed=plan.seed + index,
        )
        ops = apply_clock_skew(ops, model)
    ops.sort(key=lambda op: (op.start, op.op_id))
    return ops


def dump_chaos_fixtures(
    ops: List[Operation], directory: Union[str, Path], stem: str
) -> Dict[str, Path]:
    """Export one generated trace as Jepsen and Porcupine fixture files.

    Returns ``{"jepsen": path, "porcupine": path}`` — the cross-validation
    surface: external checkers (Knossos, Porcupine) can replay the exact
    hostile scenario our own verifiers were judged on.
    """
    from ..io.interop import dump_jepsen, dump_porcupine

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    jepsen = directory / f"{stem}.jepsen.json"
    porcupine = directory / f"{stem}.porcupine.jsonl"
    dump_jepsen(ops, jepsen)
    dump_porcupine(ops, porcupine)
    return {"jepsen": jepsen, "porcupine": porcupine}
