"""Synthetic single-register history generators.

These generators produce the controlled inputs used by the tests and the
benchmark harness:

* :func:`serial_history` — non-overlapping operations, 1-atomic by
  construction (the "perfect store" baseline);
* :func:`exactly_k_atomic_history` — a serial history engineered so that its
  minimal staleness bound is *exactly* ``k`` (useful for validating
  ``minimal_k`` and the staleness spectrum analysis);
* :func:`practical_history` — the "common case" the paper argues LBT handles
  in quasilinear time: many clients, short operations, writes that are rarely
  concurrent, occasional bounded staleness;
* :func:`random_history` — unconstrained random intervals and read values,
  which may or may not be k-atomic (the fuzzing input for cross-validation
  tests);
* :func:`synthetic_trace` — a many-register trace assembled from per-register
  practical histories, the standard input of the sharded-engine benchmarks
  and parity tests.

All randomised generators take an explicit :class:`random.Random` instance —
never the module-global ``random`` state — so every experiment is
reproducible from the seed its caller threads through.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.builder import TraceBuilder
from ..core.history import History, MultiHistory
from ..core.operation import Operation, read, write

__all__ = [
    "serial_history",
    "exactly_k_atomic_history",
    "practical_history",
    "random_history",
    "synthetic_trace",
]


def serial_history(
    num_writes: int,
    reads_per_write: int = 1,
    *,
    op_duration: float = 1.0,
    gap: float = 0.5,
    key=None,
) -> History:
    """A fully serial history: every operation finishes before the next starts.

    Reads always return the most recently completed write, so the history is
    1-atomic (and its unique valid total order is the issue order).
    """
    ops: List[Operation] = []
    t = 0.0
    for i in range(num_writes):
        ops.append(write(i, t, t + op_duration, key=key))
        t += op_duration + gap
        for _ in range(reads_per_write):
            ops.append(read(i, t, t + op_duration, key=key))
            t += op_duration + gap
    return History(ops, key=key)


def exactly_k_atomic_history(
    k: int,
    num_writes: int,
    *,
    reads_per_write: int = 1,
    op_duration: float = 1.0,
    gap: float = 0.5,
    key=None,
) -> History:
    """A serial history whose minimal staleness bound is exactly ``k``.

    After each write ``w_i`` with ``i >= k - 1``, the generator emits reads of
    the value written ``k - 1`` writes earlier.  Because every operation is
    serial, the valid total order is unique, so those reads are separated from
    their dictating writes by exactly ``k - 1`` other writes: the history is
    k-atomic but not (k-1)-atomic (for ``k >= 2``).

    Raises ``ValueError`` when ``num_writes < k`` (the pattern cannot be
    realised with fewer writes).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if num_writes < k:
        raise ValueError(
            f"need at least k={k} writes to build an exactly-{k}-atomic history"
        )
    ops: List[Operation] = []
    t = 0.0
    for i in range(num_writes):
        ops.append(write(i, t, t + op_duration, key=key))
        t += op_duration + gap
        if i >= k - 1:
            for _ in range(reads_per_write):
                ops.append(read(i - (k - 1), t, t + op_duration, key=key))
                t += op_duration + gap
    return History(ops, key=key)


def practical_history(
    rng: random.Random,
    num_operations: int,
    *,
    num_clients: int = 8,
    write_ratio: float = 0.2,
    mean_duration: float = 1.0,
    mean_think_time: float = 4.0,
    staleness_probability: float = 0.05,
    max_staleness: int = 1,
    key=None,
) -> History:
    """A realistic low-write-concurrency history.

    ``num_clients`` closed-loop clients issue operations one at a time
    (uniform think times), so at most ``num_clients`` operations are ever
    concurrent and concurrent *writes* are rare — the regime in which the
    paper expects LBT to run in quasilinear time.  Reads usually return the
    latest completed write; with probability ``staleness_probability`` they
    return a value up to ``max_staleness`` writes older, modelling a sloppy
    quorum that missed recent updates.

    The generated history is anomaly-free by construction (reads never return
    values that have not been written, and never precede their dictating
    write).
    """
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must lie in [0, 1]")

    # Phase 1: lay out the operation skeleton (client, interval, read/write)
    # with closed-loop clients.  The seed write guarantees early reads have a
    # value to return.
    skeleton: List[tuple] = [("write", 0, 0.0, 0.01)]  # (kind, client, start, finish)
    client_free_at = [0.0] * max(1, num_clients)
    client_free_at[0] = 0.01
    while len(skeleton) < num_operations:
        client = min(range(len(client_free_at)), key=lambda c: client_free_at[c])
        start = client_free_at[client] + rng.uniform(0.0, mean_think_time)
        duration = max(1e-4, rng.expovariate(1.0 / mean_duration))
        finish = start + duration
        kind = "write" if rng.random() < write_ratio else "read"
        skeleton.append((kind, client, start, finish))
        client_free_at[client] = finish

    # Phase 2: assign values with global knowledge of the final timeline, so
    # that "fresh" really means the latest write that finished before the read
    # started and the injected staleness bound is honoured exactly.
    skeleton.sort(key=lambda item: item[2])
    ops: List[Operation] = []
    finished_writes: List[Operation] = []  # sorted by finish time
    next_value = 0
    writes_in_flight: List[Operation] = []
    for kind, client, start, finish in skeleton:
        # Move writes whose interval has ended before `start` into the
        # finished pool (kept sorted by finish time).
        still_flying = []
        for w in writes_in_flight:
            if w.finish < start:
                finished_writes.append(w)
            else:
                still_flying.append(w)
        writes_in_flight = still_flying
        finished_writes.sort(key=lambda w: w.finish)
        if kind == "write":
            op = write(next_value, start, finish, key=key, client=client)
            next_value += 1
            writes_in_flight.append(op)
        else:
            visible = finished_writes
            if not visible:
                # Only possible before the seed write finishes; fall back to
                # the seed value (the read overlaps it, which is harmless).
                target_value = 0
            else:
                if rng.random() < staleness_probability and len(visible) > 1:
                    lag = rng.randint(1, min(max_staleness, len(visible) - 1))
                else:
                    lag = 0
                target_value = visible[-1 - lag].value
            op = read(target_value, start, finish, key=key, client=client)
        ops.append(op)
    return History(ops, key=key)


def synthetic_trace(
    rng: random.Random,
    num_registers: int,
    ops_per_register: int,
    *,
    num_clients: int = 8,
    write_ratio: float = 0.2,
    staleness_probability: float = 0.05,
    max_staleness: int = 1,
    size_skew: float = 0.0,
    key_prefix: str = "reg",
) -> MultiHistory:
    """A multi-register trace of independent practical histories.

    Each register gets its own :func:`practical_history` seeded from ``rng``
    (one derived seed per register, drawn in register order), so the whole
    trace is reproducible from the single stream the caller threads in, and
    regenerating with the same seed yields identical operations.

    ``size_skew`` > 0 makes register sizes uneven — register ``i`` receives
    roughly ``ops_per_register / (1 + size_skew * i / num_registers)``
    operations (a mild Zipf-like decay) — which is what gives the
    size-balanced partitioner something to balance in the benchmarks.
    """
    if num_registers < 1:
        raise ValueError(f"num_registers must be >= 1, got {num_registers}")
    if ops_per_register < 1:
        raise ValueError(f"ops_per_register must be >= 1, got {ops_per_register}")
    if size_skew < 0:
        raise ValueError(f"size_skew must be non-negative, got {size_skew}")
    builder = TraceBuilder()
    for i in range(num_registers):
        register_rng = random.Random(rng.getrandbits(64))
        size = max(2, round(ops_per_register / (1.0 + size_skew * i / num_registers)))
        history = practical_history(
            register_rng,
            size,
            num_clients=num_clients,
            write_ratio=write_ratio,
            staleness_probability=staleness_probability,
            max_staleness=max_staleness,
            key=f"{key_prefix}-{i:04d}",
        )
        builder.extend(history.operations)
    return builder.build()


def random_history(
    rng: random.Random,
    num_writes: int,
    num_reads: int,
    *,
    span: float = 20.0,
    max_duration: float = 3.0,
    key=None,
) -> History:
    """A fully random history (may contain anomalies and arbitrary staleness).

    Writes get uniform start times in ``[0, span)``; reads pick a uniformly
    random written value and a uniform start time in ``[0, span + max_duration)``.
    Used as fuzzing input: callers typically filter with
    :func:`repro.core.preprocess.has_anomalies` or normalise first.
    """
    ops: List[Operation] = []
    for i in range(num_writes):
        start = rng.uniform(0.0, span)
        ops.append(write(i, start, start + rng.uniform(1e-3, max_duration), key=key))
    for _ in range(num_reads):
        value = rng.randrange(max(1, num_writes))
        start = rng.uniform(0.0, span + max_duration)
        ops.append(read(value, start, start + rng.uniform(1e-3, max_duration), key=key))
    return History(ops, key=key)
