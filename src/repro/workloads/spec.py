"""Workload specifications and key-selection distributions.

The simulator clients (:mod:`repro.simulation.client`) draw their behaviour
from a :class:`WorkloadSpec`: the read/write mix, think-time distribution and
key-popularity distribution.  The key selectors implement the distributions
used by standard storage benchmarks (uniform, zipfian, hotspot, single-key),
so the quorum-audit experiments can mirror the workloads the paper's
motivating systems actually serve.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = [
    "KeySelector",
    "UniformKeys",
    "ZipfianKeys",
    "HotspotKeys",
    "SingleKey",
    "WorkloadSpec",
]


class KeySelector:
    """Base class for key-popularity distributions."""

    def select(self, rng: random.Random) -> str:
        """Return the key the next operation should target."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """All keys the selector can ever return."""
        raise NotImplementedError


def _key_name(i: int) -> str:
    return f"key-{i:05d}"


class UniformKeys(KeySelector):
    """Every key is equally likely."""

    def __init__(self, num_keys: int):
        if num_keys < 1:
            raise ValueError("num_keys must be positive")
        self.num_keys = num_keys

    def select(self, rng: random.Random) -> str:
        return _key_name(rng.randrange(self.num_keys))

    def keys(self) -> List[str]:
        return [_key_name(i) for i in range(self.num_keys)]


class ZipfianKeys(KeySelector):
    """Zipf-distributed key popularity (rank ``r`` has weight ``1 / r**theta``).

    ``theta ~ 0.99`` matches the skew used by YCSB-style benchmarks; higher
    values concentrate more traffic on the hottest keys, which increases the
    chance that concurrent accesses to the same register expose staleness.
    """

    def __init__(self, num_keys: int, theta: float = 0.99):
        if num_keys < 1:
            raise ValueError("num_keys must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.num_keys = num_keys
        self.theta = theta
        weights = [1.0 / ((i + 1) ** theta) for i in range(num_keys)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        self._cumulative = cumulative

    def select(self, rng: random.Random) -> str:
        u = rng.random()
        rank = bisect.bisect_left(self._cumulative, u)
        rank = min(rank, self.num_keys - 1)
        return _key_name(rank)

    def keys(self) -> List[str]:
        return [_key_name(i) for i in range(self.num_keys)]


class HotspotKeys(KeySelector):
    """A fraction of "hot" keys receives a fraction of the traffic."""

    def __init__(self, num_keys: int, hot_fraction: float = 0.1, hot_traffic: float = 0.9):
        if num_keys < 1:
            raise ValueError("num_keys must be positive")
        if not 0.0 < hot_fraction <= 1.0 or not 0.0 <= hot_traffic <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1] and hot_traffic in [0, 1]")
        self.num_keys = num_keys
        self.num_hot = max(1, int(num_keys * hot_fraction))
        self.hot_traffic = hot_traffic

    def select(self, rng: random.Random) -> str:
        if rng.random() < self.hot_traffic:
            return _key_name(rng.randrange(self.num_hot))
        if self.num_hot >= self.num_keys:
            return _key_name(rng.randrange(self.num_keys))
        return _key_name(rng.randrange(self.num_hot, self.num_keys))

    def keys(self) -> List[str]:
        return [_key_name(i) for i in range(self.num_keys)]


class SingleKey(KeySelector):
    """All traffic targets one register — the highest-contention workload."""

    def __init__(self, key: str = "key-00000"):
        self.key = key

    def select(self, rng: random.Random) -> str:
        return self.key

    def keys(self) -> List[str]:
        return [self.key]


@dataclass
class WorkloadSpec:
    """A complete client workload description for the store simulator.

    Attributes
    ----------
    num_clients:
        Number of closed-loop clients issuing operations.
    operations_per_client:
        How many operations each client issues before stopping.
    write_ratio:
        Probability that an operation is a write.
    key_selector:
        The key-popularity distribution (defaults to a single hot key, the
        most consistency-stressing choice).
    mean_think_time_ms:
        Mean of the exponential think time between a client's operations.
    seed:
        Workload-level seed; each client derives its own stream from it.
    """

    num_clients: int = 8
    operations_per_client: int = 50
    write_ratio: float = 0.5
    key_selector: KeySelector = field(default_factory=SingleKey)
    mean_think_time_ms: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if self.num_clients < 1:
            raise ValueError("num_clients must be positive")
        if self.operations_per_client < 1:
            raise ValueError("operations_per_client must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must lie in [0, 1]")
        if self.mean_think_time_ms < 0:
            raise ValueError("mean_think_time_ms must be non-negative")

    @property
    def total_operations(self) -> int:
        """Total number of operations the workload will issue."""
        return self.num_clients * self.operations_per_client

    def client_rng(self, client_id: int) -> random.Random:
        """A deterministic per-client random stream."""
        return random.Random(f"{self.seed}-client-{client_id}")
