"""Workload and history generators for tests, examples, and benchmarks."""

from .adversarial import (
    concurrent_batch_history,
    high_concurrency_history,
    non_2atomic_batch_history,
)
from .chaos import (
    apply_clock_skew,
    dump_chaos_fixtures,
    history_from_plan,
    hot_key_trace,
    indeterminate_storm_trace,
)
from .spec import (
    HotspotKeys,
    KeySelector,
    SingleKey,
    UniformKeys,
    WorkloadSpec,
    ZipfianKeys,
)
from .synthetic import (
    exactly_k_atomic_history,
    practical_history,
    random_history,
    serial_history,
    synthetic_trace,
)

__all__ = [
    "HotspotKeys",
    "KeySelector",
    "SingleKey",
    "UniformKeys",
    "WorkloadSpec",
    "ZipfianKeys",
    "apply_clock_skew",
    "concurrent_batch_history",
    "dump_chaos_fixtures",
    "exactly_k_atomic_history",
    "high_concurrency_history",
    "history_from_plan",
    "hot_key_trace",
    "indeterminate_storm_trace",
    "non_2atomic_batch_history",
    "practical_history",
    "random_history",
    "serial_history",
    "synthetic_trace",
]
