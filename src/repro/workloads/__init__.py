"""Workload and history generators for tests, examples, and benchmarks."""

from .adversarial import (
    concurrent_batch_history,
    high_concurrency_history,
    non_2atomic_batch_history,
)
from .spec import (
    HotspotKeys,
    KeySelector,
    SingleKey,
    UniformKeys,
    WorkloadSpec,
    ZipfianKeys,
)
from .synthetic import (
    exactly_k_atomic_history,
    practical_history,
    random_history,
    serial_history,
    synthetic_trace,
)

__all__ = [
    "HotspotKeys",
    "KeySelector",
    "SingleKey",
    "UniformKeys",
    "WorkloadSpec",
    "ZipfianKeys",
    "concurrent_batch_history",
    "exactly_k_atomic_history",
    "high_concurrency_history",
    "non_2atomic_batch_history",
    "practical_history",
    "random_history",
    "serial_history",
    "synthetic_trace",
]
