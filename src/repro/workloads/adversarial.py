"""Adversarial history generators for worst-case benchmarking.

Theorem 3.2 bounds LBT's running time by ``O(n log n + c·n)`` where ``c`` is
the maximum number of concurrent writes; with ``c`` proportional to ``n`` the
bound degrades to quadratic, whereas FZF stays quasilinear (Theorem 4.6).
The generators here produce histories with *controlled* write concurrency so
the benchmark harness can sweep ``c`` and exhibit exactly that behaviour:

* :func:`concurrent_batch_history` — batches of ``c`` mutually concurrent
  writes, each batch followed by a read of one designated write; 2-atomic by
  construction, but every LBT epoch sees ``Θ(c)`` candidate writes;
* :func:`high_concurrency_history` — a single-parameter wrapper that sets
  ``c = Θ(n)``, the true worst-case regime for LBT;
* :func:`non_2atomic_batch_history` — the same batched structure with reads
  that force three distinct stale values, so verifiers must answer NO (used to
  benchmark rejection paths and to test refutation reporting).
"""

from __future__ import annotations

from typing import List

from ..core.history import History
from ..core.operation import Operation, read, write

__all__ = [
    "concurrent_batch_history",
    "high_concurrency_history",
    "non_2atomic_batch_history",
]


def concurrent_batch_history(
    num_batches: int,
    batch_size: int,
    *,
    reads_per_batch: int = 1,
    key=None,
) -> History:
    """Batches of mutually concurrent writes, 2-atomic by construction.

    Each batch ``b`` contains ``batch_size`` writes that all span the same
    interval (so they are pairwise concurrent, giving max write concurrency
    ``c = batch_size``), followed by ``reads_per_batch`` serial reads of the
    batch's *last* write.  The unread writes can be linearised in any order,
    so the history is 2-atomic (indeed 1-atomic); what the construction
    stresses is LBT's per-epoch candidate scan, which must consider all
    ``batch_size`` concurrent writes.
    """
    if num_batches < 1 or batch_size < 1:
        raise ValueError("num_batches and batch_size must be positive")
    ops: List[Operation] = []
    value = 0
    t = 0.0
    batch_span = 10.0
    for b in range(num_batches):
        base = t
        last_value = None
        for i in range(batch_size):
            # All writes of the batch overlap: starts ramp up slightly while
            # finishes ramp down, keeping every pair concurrent.
            start = base + 0.001 * i
            finish = base + batch_span - 0.001 * i
            ops.append(write(value, start, finish, key=key))
            last_value = value
            value += 1
        t = base + batch_span + 1.0
        for r in range(reads_per_batch):
            ops.append(read(last_value, t, t + 0.5, key=key))
            t += 1.0
        t += 1.0
    return History(ops, key=key)


def high_concurrency_history(
    num_operations: int,
    *,
    concurrency_fraction: float = 0.25,
    key=None,
) -> History:
    """A history whose write concurrency grows linearly with its size.

    ``c`` is set to ``concurrency_fraction * num_operations`` (at least 2),
    producing the regime where LBT's ``O(c·n)`` term dominates and becomes
    quadratic, while FZF remains quasilinear.
    """
    if num_operations < 4:
        raise ValueError("need at least 4 operations")
    c = max(2, int(num_operations * concurrency_fraction))
    # Each batch contributes (c writes + 1 read); build enough batches to
    # reach the requested operation count.
    per_batch = c + 1
    num_batches = max(1, num_operations // per_batch)
    return concurrent_batch_history(num_batches, c, key=key)


def non_2atomic_batch_history(
    num_batches: int,
    batch_size: int,
    *,
    key=None,
) -> History:
    """Batched concurrent writes whose reads rule out 2-atomicity.

    After each batch of ``batch_size >= 3`` concurrent writes, three serial
    reads return three *distinct* values from the batch.  In any valid total
    order all batch writes precede those reads, so at most the last two writes
    can satisfy their readers — the third stale value forces a NO answer for
    ``k = 2``.  Useful for benchmarking the rejection path of LBT/FZF and for
    testing refutation messages.
    """
    if batch_size < 3:
        raise ValueError("batch_size must be >= 3 to rule out 2-atomicity")
    ops: List[Operation] = []
    value = 0
    t = 0.0
    batch_span = 10.0
    for b in range(num_batches):
        base = t
        batch_values = []
        for i in range(batch_size):
            start = base + 0.001 * i
            finish = base + batch_span - 0.001 * i
            ops.append(write(value, start, finish, key=key))
            batch_values.append(value)
            value += 1
        t = base + batch_span + 1.0
        for stale in batch_values[:3]:
            ops.append(read(stale, t, t + 0.5, key=key))
            t += 1.0
        t += 1.0
    return History(ops, key=key)
