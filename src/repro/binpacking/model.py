"""Bin-packing problem model (the source problem of the Theorem 5.1 reduction).

An instance asks whether ``n`` items with positive integer sizes can be
partitioned into ``m`` bins of capacity ``B``.  The NP-hardness of weighted
k-atomicity verification (Section V) is established by reducing bin packing to
k-WAV, so the library carries a small but complete bin-packing toolkit:
instance model, exact solvers, classic heuristics, and instance generators for
the benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ReductionError

__all__ = ["BinPackingInstance", "BinPackingAssignment", "random_instance"]


@dataclass(frozen=True)
class BinPackingInstance:
    """A decision-version bin-packing instance.

    Attributes
    ----------
    sizes:
        Positive integer sizes of the items, in input order.
    capacity:
        The bin capacity ``B``.
    num_bins:
        The number of available bins ``m``.
    """

    sizes: Tuple[int, ...]
    capacity: int
    num_bins: int

    def __post_init__(self):
        if self.capacity < 1:
            raise ReductionError(f"bin capacity must be positive, got {self.capacity}")
        if self.num_bins < 1:
            raise ReductionError(f"number of bins must be positive, got {self.num_bins}")
        for s in self.sizes:
            if not isinstance(s, int) or s < 1:
                raise ReductionError(f"item sizes must be positive integers, got {s!r}")

    @property
    def num_items(self) -> int:
        """The number of items ``n``."""
        return len(self.sizes)

    @property
    def total_size(self) -> int:
        """The sum of all item sizes."""
        return sum(self.sizes)

    def trivially_infeasible(self) -> bool:
        """Cheap necessary conditions for feasibility.

        Returns True when the instance certainly has no packing: some item
        exceeds the capacity, or the total size exceeds the aggregate
        capacity ``m * B``.
        """
        if any(s > self.capacity for s in self.sizes):
            return True
        return self.total_size > self.capacity * self.num_bins

    def lower_bound_bins(self) -> int:
        """A lower bound on the number of bins any packing needs."""
        if not self.sizes:
            return 0
        ceiling = -(-self.total_size // self.capacity)
        return max(1, ceiling)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BinPackingInstance items={self.num_items} capacity={self.capacity} "
            f"bins={self.num_bins}>"
        )


@dataclass(frozen=True)
class BinPackingAssignment:
    """A (claimed) solution: ``bins[i]`` lists the item indices packed in bin i."""

    instance: BinPackingInstance
    bins: Tuple[Tuple[int, ...], ...]

    def is_valid(self) -> bool:
        """Check the assignment: a partition of all items, capacity respected."""
        if len(self.bins) > self.instance.num_bins:
            return False
        assigned = [idx for b in self.bins for idx in b]
        if sorted(assigned) != list(range(self.instance.num_items)):
            return False
        for b in self.bins:
            if sum(self.instance.sizes[i] for i in b) > self.instance.capacity:
                return False
        return True

    def loads(self) -> List[int]:
        """The total size packed into each bin."""
        return [sum(self.instance.sizes[i] for i in b) for b in self.bins]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BinPackingAssignment bins={self.loads()}>"


def random_instance(
    rng: random.Random,
    *,
    num_items: int,
    capacity: int,
    num_bins: int,
    max_item: Optional[int] = None,
) -> BinPackingInstance:
    """Generate a random bin-packing instance with the given shape.

    Item sizes are uniform in ``[1, max_item]`` (default ``capacity``).  The
    instance may or may not be feasible; the benchmark harness uses both kinds.
    """
    cap_item = capacity if max_item is None else min(max_item, capacity)
    sizes = tuple(rng.randint(1, cap_item) for _ in range(num_items))
    return BinPackingInstance(sizes=sizes, capacity=capacity, num_bins=num_bins)
