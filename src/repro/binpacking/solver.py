"""Bin-packing solvers: exact branch and bound plus classic heuristics.

The exact solver decides the bin-packing decision problem (and returns a
packing witness) with a branch-and-bound over items in decreasing size order,
using symmetry breaking on identical bin loads and memoisation of failed
states.  It is exponential in the worst case — bin packing is NP-complete —
which is exactly what the Section V experiments measure.

The heuristics (first-fit, first-fit-decreasing, best-fit-decreasing) provide
fast upper bounds and serve as baselines in the benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .model import BinPackingAssignment, BinPackingInstance

__all__ = [
    "solve_exact",
    "is_feasible",
    "first_fit",
    "first_fit_decreasing",
    "best_fit_decreasing",
    "minimum_bins",
]


def _branch(
    order: Sequence[int],
    sizes: Sequence[int],
    capacity: int,
    loads: List[int],
    assignment: List[List[int]],
    pos: int,
    failed: Set[Tuple[int, Tuple[int, ...]]],
) -> bool:
    if pos == len(order):
        return True
    key = (pos, tuple(sorted(loads)))
    if key in failed:
        return False
    item = order[pos]
    size = sizes[item]
    tried_loads: Set[int] = set()
    for b in range(len(loads)):
        load = loads[b]
        if load + size > capacity:
            continue
        # Symmetry breaking: bins with identical current load are
        # interchangeable, so try only one of them.
        if load in tried_loads:
            continue
        tried_loads.add(load)
        loads[b] += size
        assignment[b].append(item)
        if _branch(order, sizes, capacity, loads, assignment, pos + 1, failed):
            return True
        loads[b] -= size
        assignment[b].pop()
    failed.add(key)
    return False


def solve_exact(instance: BinPackingInstance) -> Optional[BinPackingAssignment]:
    """Decide the instance exactly; return a packing or ``None``.

    Items are branched in decreasing size order (large items constrain the
    search most), identical-load bins are collapsed, and failed
    ``(position, sorted loads)`` states are memoised.
    """
    if instance.trivially_infeasible():
        return None
    if instance.num_items == 0:
        return BinPackingAssignment(instance, tuple(() for _ in range(instance.num_bins)))
    order = sorted(range(instance.num_items), key=lambda i: -instance.sizes[i])
    loads = [0] * instance.num_bins
    assignment: List[List[int]] = [[] for _ in range(instance.num_bins)]
    failed: Set[Tuple[int, Tuple[int, ...]]] = set()
    ok = _branch(order, instance.sizes, instance.capacity, loads, assignment, 0, failed)
    if not ok:
        return None
    result = BinPackingAssignment(instance, tuple(tuple(b) for b in assignment))
    assert result.is_valid(), "exact bin-packing solver produced an invalid packing"
    return result


def is_feasible(instance: BinPackingInstance) -> bool:
    """Boolean form of :func:`solve_exact`."""
    return solve_exact(instance) is not None


# ----------------------------------------------------------------------
# Heuristics
# ----------------------------------------------------------------------
def _fit(instance: BinPackingInstance, order: Sequence[int], *, best: bool) -> Optional[BinPackingAssignment]:
    loads = [0] * instance.num_bins
    bins: List[List[int]] = [[] for _ in range(instance.num_bins)]
    for item in order:
        size = instance.sizes[item]
        candidates = [
            b for b in range(instance.num_bins) if loads[b] + size <= instance.capacity
        ]
        if not candidates:
            return None
        if best:
            chosen = max(candidates, key=lambda b: loads[b])
        else:
            chosen = candidates[0]
        loads[chosen] += size
        bins[chosen].append(item)
    return BinPackingAssignment(instance, tuple(tuple(b) for b in bins))


def first_fit(instance: BinPackingInstance) -> Optional[BinPackingAssignment]:
    """First-fit in input order; returns a packing or ``None`` if it fails.

    Failure does not imply infeasibility — this is a heuristic.
    """
    return _fit(instance, range(instance.num_items), best=False)


def first_fit_decreasing(instance: BinPackingInstance) -> Optional[BinPackingAssignment]:
    """First-fit over items sorted by decreasing size (FFD)."""
    order = sorted(range(instance.num_items), key=lambda i: -instance.sizes[i])
    return _fit(instance, order, best=False)


def best_fit_decreasing(instance: BinPackingInstance) -> Optional[BinPackingAssignment]:
    """Best-fit (fullest feasible bin) over items sorted by decreasing size."""
    order = sorted(range(instance.num_items), key=lambda i: -instance.sizes[i])
    return _fit(instance, order, best=True)


def minimum_bins(sizes: Sequence[int], capacity: int, *, max_bins: Optional[int] = None) -> int:
    """The optimisation version: the minimum number of bins needed.

    Solved by binary search over the number of bins using the exact decision
    solver.  ``max_bins`` defaults to the number of items (one item per bin is
    always feasible when every item fits in a bin).
    """
    sizes = tuple(sizes)
    if not sizes:
        return 0
    if any(s > capacity for s in sizes):
        raise ValueError("some item exceeds the bin capacity; no packing exists")
    hi = len(sizes) if max_bins is None else max_bins
    lo = BinPackingInstance(sizes=sizes, capacity=capacity, num_bins=hi).lower_bound_bins()
    while lo < hi:
        mid = (lo + hi) // 2
        if is_feasible(BinPackingInstance(sizes=sizes, capacity=capacity, num_bins=mid)):
            hi = mid
        else:
            lo = mid + 1
    return lo
