"""Bin packing → weighted k-AV reduction (Theorem 5.1, Figure 5).

Given a bin-packing instance with ``n`` items of sizes ``s_1..s_n``, ``m``
bins and capacity ``B``, the construction builds a history whose weighted
k-atomicity for ``k = B + 2`` is equivalent to the packing's feasibility:

* ``m + 1`` *short writes* ``w(1) .. w(m+1)`` of weight 1 and ``m`` reads
  ``r(1) .. r(m)`` (``r(i)`` dictated by ``w(i)``), laid out so that their
  real-time order forces the total order
  ``w(1) w(2) r(1) w(3) r(2) … w(m) r(m-1) w(m+1) r(m)``;
* ``n`` *long writes* with weights equal to the item sizes, each spanning from
  just after ``w(1)`` finishes to just before ``w(m+1)`` starts, so their
  commit points can be placed anywhere strictly between those two writes;
* *bin i* is the region between ``w(i)`` and ``r(i)``: the k-WAV constraint
  for ``r(i)`` allows at most ``B`` units of long-write weight there (the
  budget ``B + 2`` minus the two short writes ``w(i)`` and ``w(i+1)``).

Besides the forward construction, this module can *decode* a weighted-k-AV
witness back into a bin assignment and *encode* a packing into a witness
order, which is how the round-trip tests validate Theorem 5.1 empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ReductionError
from ..core.history import History
from ..core.operation import Operation, read, write
from .model import BinPackingAssignment, BinPackingInstance

__all__ = ["ReducedInstance", "reduce_to_wkav", "decode_witness", "encode_packing"]

#: Width of each short operation's interval and the gap between consecutive
#: short operations on the constructed timeline.
_SLOT = 10.0
_WIDTH = 1.0


@dataclass(frozen=True)
class ReducedInstance:
    """The output of the reduction: a history, the bound ``k``, and bookkeeping."""

    source: BinPackingInstance
    history: History
    k: int
    short_writes: Tuple[Operation, ...]
    reads: Tuple[Operation, ...]
    long_writes: Tuple[Operation, ...]

    @property
    def num_bins(self) -> int:
        """The number of bins ``m`` of the source instance."""
        return self.source.num_bins

    def long_write_for_item(self, item: int) -> Operation:
        """The long write encoding item ``item`` (0-based)."""
        return self.long_writes[item]


def reduce_to_wkav(instance: BinPackingInstance) -> ReducedInstance:
    """Build the Figure 5 history for a bin-packing instance.

    The resulting history is weighted-(B+2)-atomic iff the instance has a
    feasible packing (Theorem 5.1).
    """
    m = instance.num_bins
    n = instance.num_items
    if m < 1:
        raise ReductionError("the reduction requires at least one bin")

    # Short operations in their forced real-time order:
    # w(1), w(2), r(1), w(3), r(2), ..., w(m+1), r(m).
    short_writes: List[Operation] = []
    reads: List[Operation] = []
    timeline: List[Tuple[str, int]] = [("w", 1)]
    for i in range(2, m + 2):
        timeline.append(("w", i))
        timeline.append(("r", i - 1))

    ops: List[Operation] = []
    op_by_label: Dict[Tuple[str, int], Operation] = {}
    for position, (kind, idx) in enumerate(timeline):
        start = position * _SLOT
        finish = start + _WIDTH
        if kind == "w":
            op = write(f"w{idx}", start, finish, weight=1)
            short_writes.append(op)
        else:
            op = read(f"w{idx}", start, finish)
            reads.append(op)
        op_by_label[(kind, idx)] = op
        ops.append(op)

    w1 = op_by_label[("w", 1)]
    w_last = op_by_label[("w", m + 1)]

    # Long writes: one per item, weight = item size, spanning from just after
    # w(1) finishes to just before w(m+1) starts.  Distinct offsets keep all
    # timestamps unique.
    long_writes: List[Operation] = []
    for item, size in enumerate(instance.sizes):
        start = w1.finish + 0.001 * (item + 1)
        finish = w_last.start - 0.001 * (item + 1)
        if finish <= start:
            raise ReductionError(
                "degenerate construction: the timeline between w(1) and w(m+1) "
                "is too short for the long writes"
            )
        op = write(f"item{item}", start, finish, weight=size)
        long_writes.append(op)
        ops.append(op)

    history = History(ops)
    return ReducedInstance(
        source=instance,
        history=history,
        k=instance.capacity + 2,
        short_writes=tuple(short_writes),
        reads=tuple(reads),
        long_writes=tuple(long_writes),
    )


def decode_witness(
    reduced: ReducedInstance, witness: Sequence[Operation]
) -> BinPackingAssignment:
    """Extract a bin assignment from a weighted-k-AV witness order.

    Each long write is assigned to the *last* bin whose region contains its
    position in the witness: bin ``i`` where ``w(i)`` is the latest short
    write placed before the long write.  The Theorem 5.1 argument shows this
    choice always respects the capacities when the witness satisfies the
    weighted (B+2)-atomicity constraint.
    """
    position = {op: idx for idx, op in enumerate(witness)}
    for op in reduced.history.operations:
        if op not in position:
            raise ReductionError(f"witness is missing operation {op!r}")

    short_positions = [position[w] for w in reduced.short_writes]
    bins: List[List[int]] = [[] for _ in range(reduced.num_bins)]
    for item, long_write in enumerate(reduced.long_writes):
        p = position[long_write]
        # Index of the last short write placed before the long write.
        last = max(
            (i for i, sp in enumerate(short_positions) if sp < p), default=None
        )
        if last is None:
            raise ReductionError(
                f"long write {long_write!r} is placed before w(1); "
                "the witness does not respect the construction's precedences"
            )
        bin_index = min(last, reduced.num_bins - 1)
        bins[bin_index].append(item)
    return BinPackingAssignment(reduced.source, tuple(tuple(b) for b in bins))


def encode_packing(
    reduced: ReducedInstance, assignment: BinPackingAssignment
) -> List[Operation]:
    """Build a witness total order from a feasible packing.

    Long writes of bin 1 are placed right after ``w(1)`` (before ``w(2)``);
    long writes of bin ``i >= 2`` right after ``r(i-1)`` (before ``w(i+1)``).
    The resulting order is valid and weighted-(B+2)-atomic whenever the
    packing respects the capacities, which is the "if" direction of
    Theorem 5.1.
    """
    if not assignment.is_valid():
        raise ReductionError("cannot encode an invalid packing")
    by_bin: Dict[int, List[Operation]] = {
        b: [reduced.long_writes[i] for i in items]
        for b, items in enumerate(assignment.bins)
    }
    m = reduced.num_bins
    # Skeleton (forced short-operation order): w(1) w(2) r(1) w(3) r(2) ...
    # with bin-1 long writes right after w(1) and bin-i long writes (i >= 2)
    # right after r(i-1), i.e. before w(i+1).
    order: List[Operation] = []
    order.append(reduced.short_writes[0])            # w(1)
    order.extend(by_bin.get(0, []))                   # bin 1 long writes
    for i in range(2, m + 2):
        order.append(reduced.short_writes[i - 1])     # w(i)
        order.append(reduced.reads[i - 2])            # r(i-1)
        if i - 1 < m:
            order.extend(by_bin.get(i - 1, []))       # bin i long writes
    return order
