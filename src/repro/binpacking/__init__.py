"""Bin packing: model, solvers, and the reduction to weighted k-AV (Section V)."""

from .model import BinPackingAssignment, BinPackingInstance, random_instance
from .reduction import ReducedInstance, decode_witness, encode_packing, reduce_to_wkav
from .solver import (
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    is_feasible,
    minimum_bins,
    solve_exact,
)

__all__ = [
    "BinPackingAssignment",
    "BinPackingInstance",
    "ReducedInstance",
    "best_fit_decreasing",
    "decode_witness",
    "encode_packing",
    "first_fit",
    "first_fit_decreasing",
    "is_feasible",
    "minimum_bins",
    "random_instance",
    "reduce_to_wkav",
    "solve_exact",
]
