"""Verification algorithms.

* :mod:`repro.algorithms.gk` — Gibbons–Korach 1-AV (linearizability) baseline.
* :mod:`repro.algorithms.lbt` — LBT 2-AV (Section III), reference and
  efficient variants.
* :mod:`repro.algorithms.fzf` — FZF 2-AV (Section IV), quasilinear worst case.
* :mod:`repro.algorithms.exact` — exact exponential oracle for any ``k``
  (plain and weighted).
* :mod:`repro.algorithms.wkav` — weighted k-AV front end (Section V).
* :mod:`repro.algorithms.gls` — zone-only partial 2-AV checker (pre-paper
  state of the art, used as a baseline).
* :mod:`repro.algorithms.online` — incremental (streaming) checker protocol
  and the online variants of GK and LBT.
* :mod:`repro.algorithms.registry` — name → algorithm/checker lookup used by
  the unified API, the streaming engine and the benchmarks.
"""

from .exact import (
    is_k_atomic_exact,
    minimal_k_exact,
    verify_k_atomic_exact,
    verify_weighted_k_atomic_exact,
)
from .fzf import is_2atomic_fzf, verify_2atomic_fzf
from .gk import is_1atomic, verify_1atomic
from .gls import PartialResult, PartialVerdict, verify_2atomic_zones_only
from .lbt import LBTChecker, is_2atomic, verify_2atomic, verify_2atomic_reference
from .online import (
    Checker,
    IncrementalGKChecker,
    IncrementalLBTChecker,
    RecheckChecker,
    checker_for,
)
from .registry import (
    CHECKERS,
    REGISTRY,
    available_algorithms,
    get_algorithm,
    get_checker,
)
from .wkav import (
    is_weighted_k_atomic,
    verify_weighted_k_atomic,
    weighted_lower_bound,
    with_weights,
)

__all__ = [
    "CHECKERS",
    "Checker",
    "IncrementalGKChecker",
    "IncrementalLBTChecker",
    "LBTChecker",
    "PartialResult",
    "PartialVerdict",
    "REGISTRY",
    "RecheckChecker",
    "available_algorithms",
    "checker_for",
    "get_algorithm",
    "get_checker",
    "is_1atomic",
    "is_2atomic",
    "is_2atomic_fzf",
    "is_k_atomic_exact",
    "is_weighted_k_atomic",
    "minimal_k_exact",
    "verify_1atomic",
    "verify_2atomic",
    "verify_2atomic_fzf",
    "verify_2atomic_reference",
    "verify_2atomic_zones_only",
    "verify_k_atomic_exact",
    "verify_weighted_k_atomic",
    "verify_weighted_k_atomic_exact",
    "weighted_lower_bound",
    "with_weights",
]
