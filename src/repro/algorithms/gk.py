"""Gibbons–Korach 1-atomicity (linearizability) verification.

Section IV of the paper recalls the classical zone conditions of Gibbons and
Korach [9]: a (uniquely-valued, anomaly-free) history is 1-atomic if and only
if

1. no two forward zones overlap, and
2. no backward zone is contained entirely in a forward zone.

This module implements the conditions with an ``O(n log n)`` sweep and is the
baseline 1-AV algorithm of the library (the ``k = 1`` case of the unified
API).  It reports which pair of zones violates a condition when the answer is
NO, which is useful when auditing a storage system.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core import columnar, vector
from ..core.history import History
from ..core.preprocess import has_anomalies
from ..core.result import VerificationResult
from ..core.zones import Cluster, build_clusters

__all__ = ["verify_1atomic", "is_1atomic", "find_1atomicity_violation"]

_ALGORITHM = "GK"


def find_1atomicity_violation(history: History) -> Optional[Tuple[str, Cluster, Cluster]]:
    """Return a violated Gibbons–Korach condition, or ``None`` if 1-atomic.

    The return value is ``(condition, cluster_a, cluster_b)`` where
    ``condition`` is ``"forward-overlap"`` (two forward zones overlap) or
    ``"backward-in-forward"`` (a backward zone lies inside a forward zone).
    """
    clusters = build_clusters(history)
    forward = [cl for cl in clusters if cl.is_forward]
    backward = [cl for cl in clusters if cl.is_backward]

    # Condition 1: no two forward zones overlap.  Sorted by low endpoint, an
    # overlap exists iff some zone starts before the running maximum high
    # endpoint of the earlier zones.
    forward_sorted = sorted(forward, key=lambda cl: cl.zone.low)
    prev: Optional[Cluster] = None
    running_high = float("-inf")
    for cl in forward_sorted:
        if prev is not None and cl.zone.low <= running_high:
            return ("forward-overlap", prev, cl)
        if cl.zone.high > running_high:
            running_high = cl.zone.high
            prev = cl
    # Condition 2: no backward zone contained entirely in a forward zone.
    # Forward zones are now known to be pairwise disjoint, so a merge-style
    # scan over the two sorted lists suffices.
    backward_sorted = sorted(backward, key=lambda cl: cl.zone.low)
    fi = 0
    for b in backward_sorted:
        while fi < len(forward_sorted) and forward_sorted[fi].zone.high < b.zone.low:
            fi += 1
        if fi < len(forward_sorted):
            f = forward_sorted[fi]
            if f.zone.low <= b.zone.low and b.zone.high <= f.zone.high:
                return ("backward-in-forward", f, b)
    return None


def verify_1atomic(
    history: History,
    *,
    columnar_path: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> VerificationResult:
    """Decide whether ``history`` is 1-atomic (linearizable).

    The history must satisfy the Section II-C assumptions (anomaly-free,
    uniquely-valued writes); use :func:`repro.core.preprocess.normalize`
    first if unsure.

    By default the zone conditions are evaluated by the fastest available
    kernel tier (:func:`repro.core.vector.resolve_kernel`): the vectorized
    numpy sweeps when numpy is importable, else the columnar kernel
    (:func:`repro.core.columnar.gk_violation`) — both index-based twins of
    :func:`find_1atomicity_violation` with identical verdicts and reasons.
    Pass ``kernel="object"`` (or the legacy ``columnar_path=False``) to force
    the object-path sweep.

    Returns
    -------
    VerificationResult
        YES/NO verdict with the violated condition in ``reason`` when NO.
        The GK test is decision-based and does not construct a witness.
    """
    if history.is_empty:
        return VerificationResult.yes(1, _ALGORITHM, witness=(), reason="empty history")
    tier = vector.resolve_kernel(kernel, columnar_path)
    if tier == "numpy":
        return vector.gk_result_np(columnar.columnar_of(history))
    if tier == "columnar":
        return _verify_1atomic_columnar(history)
    if has_anomalies(history):
        return VerificationResult.no(
            1, _ALGORITHM, reason="history contains Section II-C anomalies"
        )
    violation = find_1atomicity_violation(history)
    if violation is None:
        return VerificationResult.yes(
            1,
            _ALGORITHM,
            reason="no overlapping forward zones and no backward zone inside a forward zone",
            stats={"clusters": len(history.writes)},
        )
    condition, a, b = violation
    return VerificationResult.no(
        1,
        _ALGORITHM,
        reason=(
            f"{condition}: cluster of value {a.value!r} (zone {a.zone!r}) conflicts "
            f"with cluster of value {b.value!r} (zone {b.zone!r})"
        ),
        stats={"clusters": len(history.writes)},
    )


def _verify_1atomic_columnar(history: History) -> VerificationResult:
    """The columnar fast path of :func:`verify_1atomic` (non-empty input)."""
    col = columnar.columnar_of(history)
    if col.has_anomalies():
        return VerificationResult.no(
            1, _ALGORITHM, reason="history contains Section II-C anomalies"
        )
    violation = columnar.gk_violation(col)
    stats = {"clusters": len(history.writes)}
    if violation is None:
        return VerificationResult.yes(
            1,
            _ALGORITHM,
            reason="no overlapping forward zones and no backward zone inside a forward zone",
            stats=stats,
        )
    # Decode only the two clusters named by the violation: the reason string
    # matches the object path byte for byte.
    condition, a, b = violation
    return VerificationResult.no(
        1,
        _ALGORITHM,
        reason=(
            f"{condition}: cluster of value {col.cluster_value(a)!r} "
            f"(zone {col.cluster_zone(a)!r}) conflicts "
            f"with cluster of value {col.cluster_value(b)!r} "
            f"(zone {col.cluster_zone(b)!r})"
        ),
        stats=stats,
    )


def is_1atomic(history: History) -> bool:
    """Boolean convenience wrapper around :func:`verify_1atomic`."""
    return bool(verify_1atomic(history))
