"""LBT — 2-atomicity verification by Limited BackTracking (Section III).

LBT conceptually constructs a 2-atomic total order back to front, placing
operations into *write slots* and *read containers* (Figure 1).  It runs in
*epochs*: at the start of an epoch a candidate write is tentatively placed in
the latest unfilled write slot; that choice then uniquely determines the rest
of the epoch's placements (no further search), and backtracking is limited to
the choice of the epoch's first write.  The paper gives the pseudo-code in
Figure 2 and proves correctness (Theorem 3.1) and an
``O(n log n + c·n)`` bound (Theorem 3.2) where ``c`` is the maximum number of
concurrent writes.

This module provides two interchangeable implementations:

* :func:`verify_2atomic_reference` — a direct, easily-auditable transcription
  of Figure 2 operating on plain Python sets (quadratic bookkeeping, used as a
  readable reference and in cross-validation tests);
* :class:`LBTChecker` / :func:`verify_2atomic` — the efficient variant from
  the Theorem 3.2 proof, using linked-list removal with an undo log and
  iterative-deepening candidate exploration.

Both produce an explicit witness total order on YES.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.history import History
from ..core.operation import Operation
from ..core.preprocess import has_anomalies, normalize
from ..core.result import VerificationResult

__all__ = [
    "verify_2atomic",
    "verify_2atomic_reference",
    "is_2atomic",
    "LBTChecker",
]

_ALGORITHM = "LBT"
_ALGORITHM_REF = "LBT-reference"


# ======================================================================
# Reference implementation (direct transcription of Figure 2)
# ======================================================================
def _run_epoch_reference(
    first: Operation,
    H: Set[Operation],
    W: Set[Operation],
    history: History,
) -> Tuple[bool, List[List[Operation]]]:
    """Run one epoch starting from candidate ``first``.

    Mutates ``H`` and ``W``.  Returns ``(success, segments)`` where
    ``segments[i]`` holds the write placed in the i-th slot of the epoch
    (latest first) followed by the reads placed in its read container.
    """
    w = first
    segments: List[List[Operation]] = []
    while True:
        w_next: Optional[Operation] = None
        container: List[Operation] = []
        # Line 13: every remaining operation that starts after w finishes.
        after = [op for op in H if w.finish < op.start]
        for op in after:
            if op.is_write:
                return False, segments  # line 14
            dictating = history.dictating_write(op)
            if dictating is not w and dictating is not w_next:
                if w_next is not None:
                    return False, segments  # line 16
                w_next = dictating  # line 17
            container.append(op)
        for op in after:
            H.discard(op)  # line 18
        # Lines 19-20: remaining dictated reads of w, then w itself.
        rest = [r for r in history.dictated_reads(w) if r in H]
        for r in rest:
            H.discard(r)
            container.append(r)
        H.discard(w)
        W.discard(w)
        container.sort(key=lambda op: (op.start, op.finish, op.op_id))
        segments.append([w] + container)
        if w_next is None:
            return True, segments  # line 21
        w = w_next  # line 22


def verify_2atomic_reference(history: History) -> VerificationResult:
    """Decide 2-atomicity with a literal transcription of Figure 2.

    Quadratic-or-worse bookkeeping, but very close to the paper's pseudo-code;
    primarily used as a cross-validation reference for :func:`verify_2atomic`.
    The input must satisfy the Section II-C assumptions (use
    :func:`repro.core.preprocess.normalize`).
    """
    if history.is_empty:
        return VerificationResult.yes(2, _ALGORITHM_REF, witness=())
    if has_anomalies(history):
        return VerificationResult.no(
            2, _ALGORITHM_REF, reason="history contains Section II-C anomalies"
        )

    H: Set[Operation] = set(history.operations)
    W: Set[Operation] = set(history.writes)
    witness_suffix: List[Operation] = []
    epochs = 0
    candidates_tried = 0

    while H:
        epochs += 1
        # Line 3: writes in W that do not precede any other write in W.
        candidates = [
            w for w in W if not any(w.precedes(other) for other in W if other is not w)
        ]
        # Deterministic order: latest-finishing candidates first.
        candidates.sort(key=lambda w: (-w.finish, w.op_id))
        success = False
        for candidate in candidates:
            candidates_tried += 1
            H_trial = set(H)
            W_trial = set(W)
            ok, segments = _run_epoch_reference(candidate, H_trial, W_trial, history)
            if ok:
                H, W = H_trial, W_trial
                epoch_ops: List[Operation] = []
                for segment in reversed(segments):
                    epoch_ops.extend(segment)
                witness_suffix = epoch_ops + witness_suffix
                success = True
                break
        if not success:
            return VerificationResult.no(
                2,
                _ALGORITHM_REF,
                reason=f"all {len(candidates)} epoch candidates failed with "
                f"{len(H)} operations left",
                stats={"epochs": epochs, "candidates_tried": candidates_tried},
            )
    return VerificationResult.yes(
        2,
        _ALGORITHM_REF,
        witness=witness_suffix,
        stats={"epochs": epochs, "candidates_tried": candidates_tried},
    )


# ======================================================================
# Efficient implementation (Theorem 3.2)
# ======================================================================
class _LinkedList:
    """An intrusive doubly linked list over integer node ids with an undo log.

    Nodes are identified by their index in the original sorted array.  Removal
    is O(1) and logged; :meth:`undo_to` restores removals in reverse order,
    which re-links nodes correctly because a removed node keeps its own
    ``prev``/``next`` pointers.
    """

    __slots__ = ("prev", "next", "head", "tail", "removed", "log")

    def __init__(self, n: int):
        self.prev = list(range(-1, n - 1))
        self.next = list(range(1, n + 1))
        self.head = 0 if n else -1
        self.tail = n - 1
        if n:
            self.next[n - 1] = -1
        self.removed = [False] * n
        self.log: List[int] = []

    def remove(self, i: int) -> None:
        """Unlink node ``i`` and record the removal."""
        if self.removed[i]:
            return
        p, nx = self.prev[i], self.next[i]
        if p != -1:
            self.next[p] = nx
        else:
            self.head = nx
        if nx != -1:
            self.prev[nx] = p
        else:
            self.tail = p
        self.removed[i] = True
        self.log.append(i)

    def undo_to(self, mark: int) -> None:
        """Undo removals until the log has length ``mark``."""
        while len(self.log) > mark:
            i = self.log.pop()
            p, nx = self.prev[i], self.next[i]
            if p != -1:
                self.next[p] = i
            else:
                self.head = i
            if nx != -1:
                self.prev[nx] = i
            else:
                self.tail = i
            self.removed[i] = False

    def mark(self) -> int:
        """Return the current undo-log position."""
        return len(self.log)

    def is_empty(self) -> bool:
        """True iff every node has been removed."""
        return self.head == -1


class LBTChecker:
    """Efficient LBT with linked-list removal and iterative deepening.

    The data-structure choices follow the proof of Theorem 3.2:

    * ``H`` is kept as a doubly linked list sorted by start time, so the
      operations that start after a write's finish form a suffix;
    * ``W`` is kept as a doubly linked list sorted by finish time, so the
      epoch candidates (writes that do not precede any other remaining write)
      form a suffix;
    * every removal is O(1) and reverted through an undo log when an epoch
      attempt is aborted;
    * candidates of an epoch are explored with iterative deepening (budget
      doubling), so the cost of an epoch is O(c · t) where ``t`` is the cost
      of the cheapest successful candidate.
    """

    def __init__(self, history: History, *, kernel: Optional[str] = None):
        from ..core import vector

        self.history = history
        # Operations sorted by start time define the H linked list.  The hot
        # loops below never touch the Operation objects themselves: all
        # per-operation state is pre-extracted into parallel index columns so
        # the suffix walks are array lookups, not attribute chases.
        self.ops: List[Operation] = list(history.operations)
        self.h_index: Dict[Operation, int] = {op: i for i, op in enumerate(self.ops)}
        self.H = _LinkedList(len(self.ops))
        if vector.resolve_kernel(kernel, None) == "numpy" and self.ops:
            # Vectorized setup: the same columns, built with array ops
            # (lexsort / stable argsort) instead of per-operation Python.
            cols = vector.lbt_setup(history)
            self.h_starts = cols["h_starts"]
            self.h_is_write = cols["h_is_write"]
            self.h_of_w = cols["h_of_w"]
            self.writes = [self.ops[i] for i in self.h_of_w]
            self.w_starts = cols["w_starts"]
            self.w_finishes = cols["w_finishes"]
            self.dictated_of_w = cols["dictated_of_w"]
            self.dictating_w_of_h = cols["dictating_w_of_h"]
            self.w_index = {w: i for i, w in enumerate(self.writes)}
            self.W = _LinkedList(len(self.writes))
            self.stats = {"epochs": 0, "candidates_tried": 0, "deepening_rounds": 0}
            return
        self.h_starts: List[float] = [op.start for op in self.ops]
        self.h_is_write: List[bool] = [op.is_write for op in self.ops]
        # Writes sorted by finish time define the W linked list.
        self.writes: List[Operation] = sorted(
            history.writes, key=lambda w: (w.finish, w.op_id)
        )
        self.w_index: Dict[Operation, int] = {w: i for i, w in enumerate(self.writes)}
        self.W = _LinkedList(len(self.writes))
        self.w_starts: List[float] = [w.start for w in self.writes]
        self.w_finishes: List[float] = [w.finish for w in self.writes]
        # Cross map between the two index spaces.
        self.h_of_w: List[int] = [self.h_index[w] for w in self.writes]
        # Dictated reads of each write (by W index), as H indices; and for
        # each read, the W index of its dictating write.
        self.dictated_of_w: List[List[int]] = [
            [self.h_index[r] for r in history.dictated_reads(w)] for w in self.writes
        ]
        dictating_w = [-1] * len(self.ops)
        for wi, read_indices in enumerate(self.dictated_of_w):
            for hi in read_indices:
                dictating_w[hi] = wi
        self.dictating_w_of_h: List[int] = dictating_w
        self.stats = {"epochs": 0, "candidates_tried": 0, "deepening_rounds": 0}

    # ------------------------------------------------------------------
    def _candidate_indices(self) -> List[int]:
        """W indices of the epoch candidates (line 3), latest-finishing first.

        As argued in the Theorem 3.2 proof, the candidates form a suffix of W
        when W is sorted by finish time: a write can only precede writes with
        a strictly larger finish time, so scanning from the tail while
        tracking the maximum start time seen so far identifies the whole
        candidate set in O(c) steps, and the scan can stop at the first
        non-candidate (every earlier write then precedes the same later
        write).
        """
        candidates: List[int] = []
        max_start_seen = float("-inf")
        w_starts = self.w_starts
        w_finishes = self.w_finishes
        w_prev = self.W.prev
        i = self.W.tail
        while i != -1:
            if w_finishes[i] < max_start_seen:
                break
            candidates.append(i)
            s = w_starts[i]
            if s > max_start_seen:
                max_start_seen = s
            i = w_prev[i]
        return candidates

    def _candidates(self) -> List[Operation]:
        """The epoch-candidate writes (object view of :meth:`_candidate_indices`)."""
        return [self.writes[i] for i in self._candidate_indices()]

    # ------------------------------------------------------------------
    def _run_epoch(
        self, first_w: int, budget: Optional[int]
    ) -> Tuple[str, List[List[int]], Tuple[int, int]]:
        """Attempt an epoch starting at W index ``first_w`` with a step budget.

        Returns ``(outcome, segments, marks)`` where outcome is ``"success"``,
        ``"fail"`` (the epoch is definitively impossible) or ``"budget"`` (the
        step budget ran out before a verdict).  ``segments`` hold H indices —
        decoded to operations only when a witness is assembled.  ``marks`` are
        the undo-log positions of H and W before the attempt, so the caller
        can revert.
        """
        h_mark = self.H.mark()
        w_mark = self.W.mark()
        segments: List[List[int]] = []
        steps = 0
        wi = first_w
        h_starts = self.h_starts
        h_is_write = self.h_is_write
        h_prev = self.H.prev
        h_of_w = self.h_of_w
        dictating_w = self.dictating_w_of_h
        while True:
            w_next = -1
            w_h = h_of_w[wi]
            w_finish = self.w_finishes[wi]
            container: List[int] = []
            # Operations starting after w.finish form a suffix of H (sorted
            # by start time): walk backwards from the tail.
            i = self.H.tail
            to_remove: List[int] = []
            while i != -1 and h_starts[i] > w_finish:
                if h_is_write[i]:
                    if i != w_h:
                        return "fail", segments, (h_mark, w_mark)
                else:
                    dw = dictating_w[i]
                    if dw != wi and dw != w_next:
                        if w_next != -1:
                            return "fail", segments, (h_mark, w_mark)
                        w_next = dw
                    container.append(i)
                    to_remove.append(i)
                i = h_prev[i]
                steps += 1
                if budget is not None and steps > budget:
                    return "budget", segments, (h_mark, w_mark)
            for idx in to_remove:
                self.H.remove(idx)
            # Remaining dictated reads of w, then w itself.
            for idx in self.dictated_of_w[wi]:
                if not self.H.removed[idx]:
                    container.append(idx)
                    self.H.remove(idx)
                steps += 1
            self.H.remove(w_h)
            self.W.remove(wi)
            steps += 1
            container.sort()
            segments.append([w_h] + container)
            if budget is not None and steps > budget:
                return "budget", segments, (h_mark, w_mark)
            if w_next == -1:
                return "success", segments, (h_mark, w_mark)
            wi = w_next

    # ------------------------------------------------------------------
    def verify(self) -> VerificationResult:
        """Run LBT to completion and return the verdict with a witness."""
        history = self.history
        if history.is_empty:
            return VerificationResult.yes(2, _ALGORITHM, witness=())
        if has_anomalies(history):
            return VerificationResult.no(
                2, _ALGORITHM, reason="history contains Section II-C anomalies"
            )
        witness_suffix: List[int] = []
        while not self.H.is_empty():
            self.stats["epochs"] += 1
            candidates = self._candidate_indices()
            outcome_segments = self._explore_candidates(candidates)
            if outcome_segments is None:
                return VerificationResult.no(
                    2,
                    _ALGORITHM,
                    reason=f"all {len(candidates)} epoch candidates failed",
                    stats=dict(self.stats),
                )
            epoch_ops: List[int] = []
            for segment in reversed(outcome_segments):
                epoch_ops.extend(segment)
            witness_suffix = epoch_ops + witness_suffix
        ops = self.ops
        return VerificationResult.yes(
            2,
            _ALGORITHM,
            witness=[ops[i] for i in witness_suffix],
            stats=dict(self.stats),
        )

    def _explore_candidates(
        self, candidates: Sequence[int]
    ) -> Optional[List[List[int]]]:
        """Find a successful candidate (by W index) via iterative deepening.

        Returns the segments of the successful epoch (with H/W permanently
        updated), or ``None`` if every candidate definitively fails.
        """
        alive = list(candidates)
        budget = 4
        while alive:
            self.stats["deepening_rounds"] += 1
            survivors: List[int] = []
            for candidate in alive:
                self.stats["candidates_tried"] += 1
                outcome, segments, (h_mark, w_mark) = self._run_epoch(candidate, budget)
                if outcome == "success":
                    return segments
                # Revert this attempt.
                self.H.undo_to(h_mark)
                self.W.undo_to(w_mark)
                if outcome == "budget":
                    survivors.append(candidate)
            alive = survivors
            budget *= 2
        return None


def verify_2atomic(
    history: History,
    *,
    preprocess: bool = False,
    kernel: Optional[str] = None,
) -> VerificationResult:
    """Decide whether ``history`` is 2-atomic using the efficient LBT.

    Parameters
    ----------
    history:
        The history to verify.  Must satisfy the Section II-C assumptions
        unless ``preprocess=True``.
    preprocess:
        When true, run :func:`repro.core.preprocess.normalize` first
        (timestamp tie-breaking and write shortening).  Anomalous histories
        then yield a NO verdict instead of an exception.
    kernel:
        Kernel tier for the checker's setup columns
        (:func:`repro.core.vector.resolve_kernel`); the epoch loops
        themselves are inherently sequential and identical across tiers.
    """
    if preprocess:
        if has_anomalies(history):
            return VerificationResult.no(
                2, _ALGORITHM, reason="history contains Section II-C anomalies"
            )
        history = normalize(history)
    return LBTChecker(history, kernel=kernel).verify()


def is_2atomic(history: History, *, preprocess: bool = False) -> bool:
    """Boolean convenience wrapper around :func:`verify_2atomic`."""
    return bool(verify_2atomic(history, preprocess=preprocess))
