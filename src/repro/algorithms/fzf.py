"""FZF — "Forward Zones First" 2-atomicity verification (Section IV).

FZF decides 2-atomicity in ``O(n log n)`` time even in the worst case.  It
runs in three stages:

* **Stage 1** splits the history into the *chunk set* ``CS(H)`` — maximal
  chunks whose forward zones form continuous intervals — plus *dangling*
  backward clusters (implemented in :mod:`repro.core.chunks`).
* **Stage 2** examines each chunk ``K`` independently.  It builds the order
  ``T_F`` of forward-cluster dictating writes by increasing zone low endpoint
  and its first-two-swapped variant ``T'_F`` (Lemma 4.2 shows no other order
  over the forward writes can be viable), extends them with the at most two
  backward-cluster writes prepended/appended (Lemma 4.3; three or more
  backward clusters are an immediate NO), and tests each candidate order for
  *viability* with a simplified, non-backtracking LBT pass.
* **Stage 3** outputs YES iff every chunk admitted a viable order
  (Lemma 4.1 stitches the per-chunk orders and the dangling clusters into a
  witness for the full history).

The implementation returns a witness total order on YES by concatenating the
per-chunk witnesses and the dangling clusters in increasing order of their low
endpoints, which extends the ``<=_H`` relation used in the Lemma 4.1 proof.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import columnar, vector
from ..core.chunks import Chunk, ChunkSet, compute_chunk_set
from ..core.history import History
from ..core.operation import Operation
from ..core.preprocess import has_anomalies, normalize
from ..core.result import VerificationResult
from ..core.zones import Cluster, build_clusters

__all__ = ["verify_2atomic_fzf", "is_2atomic_fzf", "check_viable", "candidate_orders"]

_ALGORITHM = "FZF"


# ======================================================================
# Viability subroutine (simplified LBT, Section IV-C)
# ======================================================================
def check_viable(
    order: Sequence[Operation],
    chunk_ops: Sequence[Operation],
    dictating: Dict[Operation, Operation],
    dictated: Dict[Operation, Tuple[Operation, ...]],
) -> Optional[List[Operation]]:
    """Test whether a write order is *viable* for a chunk.

    ``order`` is a candidate total order over **all** dictating writes of the
    chunk; ``chunk_ops`` are all operations of the chunk (``H|K``).  The order
    is viable iff it extends to a valid 2-atomic total order over
    ``chunk_ops``.  Following Section IV-C, the test processes the writes of
    ``order`` in reverse, without backtracking: the operations that start
    after the current write's finish must all be reads dictated either by the
    current write or by its immediate predecessor in ``order`` (otherwise some
    write would end up with separation at least two), and each such read is
    placed immediately after the current write.

    Returns the extended total order (a witness over ``chunk_ops``) when the
    order is viable, or ``None`` otherwise.

    The pass runs in ``O(m log m)`` time for a chunk with ``m`` operations:
    the chunk's operations are sorted by start time once, after which the
    operations starting after each write's finish form a suffix that is
    consumed by a linked-list walk with O(1) removals.
    """
    order = list(order)
    ops = sorted(chunk_ops, key=lambda o: (o.start, o.finish, o.op_id))
    n = len(ops)
    index = {op: i for i, op in enumerate(ops)}
    if len(index) != n:
        return None
    prev = list(range(-1, n - 1))
    nxt = list(range(1, n + 1))
    if n:
        nxt[n - 1] = -1
    tail = n - 1
    removed = [False] * n
    remaining_count = n

    def remove(i: int) -> None:
        nonlocal tail, remaining_count
        if removed[i]:
            return
        p, nx = prev[i], nxt[i]
        if p != -1:
            nxt[p] = nx
        if nx != -1:
            prev[nx] = p
        else:
            tail = p
        removed[i] = True
        remaining_count -= 1

    segments: List[List[Operation]] = []
    for i in range(len(order) - 1, -1, -1):
        w = order[i]
        pred = order[i - 1] if i > 0 else None
        w_idx = index.get(w)
        if w_idx is None or removed[w_idx]:
            return None
        container: List[Operation] = []
        # Operations starting after w.finish form a suffix of the remaining
        # operations sorted by start time.
        j = tail
        while j != -1 and ops[j].start > w.finish:
            op = ops[j]
            nxt_j = prev[j]
            if op.is_write:
                # A later-ordered write starts after w finishes: the candidate
                # order contradicts the precedence partial order.
                return None
            dw = dictating.get(op)
            if dw is not w and dw is not pred:
                return None
            container.append(op)
            remove(j)
            j = nxt_j
        for r in dictated.get(w, ()):
            r_idx = index.get(r)
            if r_idx is not None and not removed[r_idx]:
                container.append(r)
                remove(r_idx)
        remove(w_idx)
        container.sort(key=lambda o: (o.start, o.finish, o.op_id))
        segments.append([w] + container)
    if remaining_count:
        # Some operation was never placed (e.g. a read whose dictating write
        # is not part of the candidate order) — not a viable extension.
        return None
    witness: List[Operation] = []
    for segment in reversed(segments):
        witness.extend(segment)
    return witness


# ======================================================================
# Candidate order construction (Stage 2)
# ======================================================================
def candidate_orders(chunk: Chunk) -> List[Tuple[Operation, ...]]:
    """Build the candidate write orders FZF tests for a chunk.

    Following Figure 4: ``T_F`` orders the forward-cluster writes by
    increasing zone low endpoint and ``T'_F`` swaps its first two elements;
    with ``B`` backward clusters the candidates are

    * ``B = 0``: ``{T_F, T'_F}``,
    * ``B = 1``: ``{w·T_F, T_F·w, w·T'_F, T'_F·w}``,
    * ``B = 2``: ``{w1·T_F·w2, w2·T_F·w1, w1·T'_F·w2, w2·T'_F·w1}``,
    * ``B >= 3``: the empty set (the chunk — hence the history — is not
      2-atomic, Lemma 4.3 Case 4).

    Duplicate orders (e.g. when ``T_F = T'_F``) are removed while preserving
    the order in which Figure 4 lists them.
    """
    tf = tuple(cl.write for cl in chunk.forward_clusters)
    if len(tf) >= 2:
        tf_prime = (tf[1], tf[0]) + tf[2:]
    else:
        tf_prime = tf
    backward_writes = [cl.write for cl in chunk.backward_clusters]
    b = len(backward_writes)
    raw: List[Tuple[Operation, ...]]
    if b == 0:
        raw = [tf, tf_prime]
    elif b == 1:
        w = backward_writes[0]
        raw = [(w,) + tf, tf + (w,), (w,) + tf_prime, tf_prime + (w,)]
    elif b == 2:
        w1, w2 = backward_writes
        raw = [
            (w1,) + tf + (w2,),
            (w2,) + tf + (w1,),
            (w1,) + tf_prime + (w2,),
            (w2,) + tf_prime + (w1,),
        ]
    else:
        raw = []
    seen = set()
    unique: List[Tuple[Operation, ...]] = []
    for order in raw:
        key = tuple(op.op_id for op in order)
        if key not in seen:
            seen.add(key)
            unique.append(order)
    return unique


def _dangling_witness(cluster: Cluster) -> List[Operation]:
    """A valid 2-atomic (indeed 1-atomic) order for a single dangling cluster.

    A dangling cluster is backward, so all of its operations are pairwise
    concurrent; placing the write first and its reads afterwards (by start
    time) is a valid 1-atomic order.
    """
    return [cluster.write] + sorted(
        cluster.reads, key=lambda o: (o.start, o.finish, o.op_id)
    )


# ======================================================================
# The full algorithm
# ======================================================================
def verify_2atomic_fzf(
    history: History,
    *,
    preprocess: bool = False,
    columnar_path: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> VerificationResult:
    """Decide whether ``history`` is 2-atomic using FZF.

    Parameters
    ----------
    history:
        The history to verify.  Must satisfy the Section II-C assumptions
        unless ``preprocess=True``.
    preprocess:
        When true, normalise the history first (timestamp tie-breaking and
        write shortening); anomalous histories yield a NO verdict.
    columnar_path:
        Legacy kernel switch: ``True``/``False`` force the columnar or object
        kernels.  Superseded by ``kernel``.
    kernel:
        ``"object"``, ``"columnar"`` or ``"numpy"``; ``None`` (default) picks
        the fastest available tier (:func:`repro.core.vector.resolve_kernel`).
        The columnar run (:func:`repro.core.columnar.fzf_verdict`) and its
        vectorized twin (:func:`repro.core.vector.fzf_verdict_np`) are
        index-based twins of the object path — identical verdicts, reasons
        and stats — that decode indices back to operations only for the
        witness.

    Returns
    -------
    VerificationResult
        YES with a stitched witness order, or NO naming the chunk that failed.
    """
    if history.is_empty:
        return VerificationResult.yes(2, _ALGORITHM, witness=())
    tier = vector.resolve_kernel(kernel, columnar_path)
    if tier != "object":
        if preprocess:
            # Check anomalies on the raw history (cheap object scan, cached)
            # so only the normalised history gets encoded.
            if has_anomalies(history):
                return VerificationResult.no(
                    2, _ALGORITHM, reason="history contains Section II-C anomalies"
                )
            history = normalize(history)
            col = columnar.columnar_of(history)
        else:
            col = columnar.columnar_of(history)
            anomalous = (
                vector.has_anomalies(col)
                if tier == "numpy"
                else col.has_anomalies()
            )
            if anomalous:
                return VerificationResult.no(
                    2, _ALGORITHM, reason="history contains Section II-C anomalies"
                )
        outcome = (
            vector.fzf_verdict_np(col)
            if tier == "numpy"
            else columnar.fzf_verdict(col)
        )
        if not outcome.ok:
            return VerificationResult.no(
                2, _ALGORITHM, reason=outcome.reason, stats=outcome.stats
            )
        ops = history.operations
        return VerificationResult.yes(
            2,
            _ALGORITHM,
            witness=[ops[i] for i in outcome.witness],
            stats=outcome.stats,
        )
    if has_anomalies(history):
        return VerificationResult.no(
            2, _ALGORITHM, reason="history contains Section II-C anomalies"
        )
    if preprocess:
        history = normalize(history)

    clusters = build_clusters(history)
    chunk_set = compute_chunk_set(history, clusters)
    dictating = {r: history.dictating_write(r) for r in history.reads}
    dictated = {w: history.dictated_reads(w) for w in history.writes}

    stats = {
        "chunks": chunk_set.num_chunks,
        "dangling_clusters": chunk_set.num_dangling,
        "orders_tested": 0,
    }

    # Stage 2: test each maximal chunk.
    pieces: List[Tuple[float, List[Operation]]] = []
    for chunk in chunk_set.chunks:
        if chunk.num_backward >= 3:
            return VerificationResult.no(
                2,
                _ALGORITHM,
                reason=(
                    f"chunk spanning [{chunk.interval[0]:g}, {chunk.interval[1]:g}] "
                    f"contains {chunk.num_backward} backward clusters (>= 3), "
                    "so no viable write order exists (Lemma 4.3)"
                ),
                stats=stats,
            )
        chunk_ops = chunk.operations()
        chunk_witness: Optional[List[Operation]] = None
        for order in candidate_orders(chunk):
            stats["orders_tested"] += 1
            extended = check_viable(order, chunk_ops, dictating, dictated)
            if extended is not None:
                chunk_witness = extended
                break
        if chunk_witness is None:
            return VerificationResult.no(
                2,
                _ALGORITHM,
                reason=(
                    f"no candidate write order is viable for the chunk spanning "
                    f"[{chunk.interval[0]:g}, {chunk.interval[1]:g}] "
                    f"({chunk.num_forward} forward / {chunk.num_backward} backward clusters)"
                ),
                stats=stats,
            )
        pieces.append((chunk.low, chunk_witness))

    # Dangling clusters are individually 1-atomic; order all pieces by their
    # low endpoint, which extends the <=_H partial order of Lemma 4.1.
    for cluster in chunk_set.dangling:
        pieces.append((cluster.zone.low, _dangling_witness(cluster)))
    pieces.sort(key=lambda item: item[0])
    witness: List[Operation] = []
    for _, piece in pieces:
        witness.extend(piece)

    # Stage 3.
    return VerificationResult.yes(2, _ALGORITHM, witness=witness, stats=stats)


def is_2atomic_fzf(history: History, *, preprocess: bool = False) -> bool:
    """Boolean convenience wrapper around :func:`verify_2atomic_fzf`."""
    return bool(verify_2atomic_fzf(history, preprocess=preprocess))
