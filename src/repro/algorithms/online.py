"""Incremental (online) k-atomicity checkers.

The paper frames k-atomicity verification as an *audit* operators run against
live stores; every batch algorithm in this package needs the complete history
up front.  This module adds the streaming counterpart: a :class:`Checker`
ingests one operation at a time and emits :class:`~repro.core.result.StreamVerdict`
objects while the stream is still running.

The protocol exploits a simple monotonicity property.  Call a set of
operations *dictating-closed* when it contains the dictating write of every
read in the set.  Restricting a valid k-atomic total order of a history to a
dictating-closed subset yields a valid k-atomic total order of the subset
(validity survives subsequencing, and removing writes only shrinks the number
of intervening writes between a read and its dictating write).  Hence:

* a **NO** on any dictating-closed prefix is *final* — no continuation of the
  stream can make the complete history k-atomic;
* a **YES** on a prefix is *provisional* — later operations can still ruin it.

Checkers therefore keep reads whose dictating write has not yet arrived in a
*pending* buffer (a read may complete before its dictating write does, so a
completion-ordered stream can deliver them out of dictation order) and check
only the resolved, dictating-closed prefix.  :meth:`Checker.finish` folds the
still-pending reads back in (where they surface as Section II-C anomalies if
their writes truly never arrived) and delegates to the batch algorithm over
the complete buffered history, so the final verdict of an incremental checker
is *identical* to its batch counterpart's by construction.

Two cost controls keep the per-operation work low:

* **geometric check cadence** — authoritative re-checks run when the resolved
  prefix reaches geometrically spaced sizes (doubling by default), so the
  total re-check cost over a stream of ``n`` operations is a constant factor
  of one batch run, not ``n`` of them;
* **zone monitoring** (GK) — the Gibbons–Korach conditions are interval
  conditions over cluster zones, so :class:`IncrementalGKChecker` maintains
  the cluster/zone state in O(1) per operation and an ordered forward-zone
  index in O(log n); when the raw-zone state trips a GK condition the checker
  confirms immediately with an authoritative check instead of waiting for the
  next cadence point.  No analogous incremental formulation of LBT is known
  (it places operations back to front), so :class:`IncrementalLBTChecker`
  relies on cadence re-checks from its buffer alone.

Memory is O(n) — the buffer must be retained for exact batch parity.  The
bounded-memory alternative is the *windowed* mode of
:mod:`repro.engine.streaming`, which trades exactness for a fixed footprint.

Checkers are also **checkpointable**: :meth:`Checker.snapshot` captures the
complete internal state (buffers, cadence position, latched verdicts, monitor
indexes) as one picklable object and :meth:`Checker.restore` rehydrates it, so
a long-running audit service can persist sessions to disk and resume them
after a crash with a verdict stream *identical* to an uninterrupted run — the
monitor state is saved verbatim rather than rebuilt by replay, so even the
eager-check timing of :class:`IncrementalGKChecker` survives the round trip.
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.errors import DuplicateValueError, HistoryError, VerificationError
from ..core.history import History
from ..core.operation import Operation
from ..core.result import StreamVerdict, VerificationResult

__all__ = [
    "Checker",
    "RecheckChecker",
    "IncrementalGKChecker",
    "IncrementalLBTChecker",
    "checker_for",
    "restore_checker",
]

#: Default number of resolved operations before the first authoritative check.
DEFAULT_CHECK_INTERVAL = 16
#: Default geometric growth factor between authoritative checks.
DEFAULT_CADENCE_GROWTH = 2.0


class Checker(ABC):
    """Protocol for incremental k-atomicity checkers.

    A checker verifies a *single register's* operation stream (k-atomicity is
    local, Section II-B; multi-register streams are demultiplexed by the
    streaming engine).  The lifecycle is::

        checker = IncrementalGKChecker()
        for op in stream:
            verdict = checker.feed(op)      # StreamVerdict | None
            if verdict is not None and verdict.final and not verdict:
                alarm(verdict)              # violation: sound, irrevocable
        result = checker.finish()           # == batch verdict on the stream

    ``feed`` returns a verdict only when the checker actually (re)checked on
    that operation; ``check_now`` forces a verdict at any point (the streaming
    engine calls it at window boundaries).  ``reset`` returns the checker to
    its initial state for reuse.
    """

    #: The staleness bound this checker decides.
    k: int

    @abstractmethod
    def feed(self, op: Operation) -> Optional[StreamVerdict]:
        """Ingest one operation; returns a verdict if one was produced."""

    @abstractmethod
    def check_now(self) -> StreamVerdict:
        """Produce a verdict for the stream seen so far."""

    @abstractmethod
    def peek(self) -> StreamVerdict:
        """Return the latest known verdict without forcing a re-check.

        Unlike :meth:`check_now`, the returned verdict may lag behind the
        stream by up to one check-cadence gap; it is O(1) (after the first
        call) and is what high-throughput consumers poll between cadence
        points.
        """

    @abstractmethod
    def finish(self) -> VerificationResult:
        """End the stream and return the final (batch-equal) verdict."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all ingested operations and start over."""

    @abstractmethod
    def snapshot(self) -> dict:
        """Capture the complete checker state as one picklable mapping.

        The snapshot is self-describing (it records the checker class and
        configuration) and deep enough that ``restore`` reproduces not just
        the final verdict but the *entire future verdict sequence* of an
        uninterrupted checker fed the same remaining operations.
        """

    @abstractmethod
    def restore(self, state: dict) -> None:
        """Rehydrate the state captured by :meth:`snapshot`.

        Raises :class:`~repro.core.errors.VerificationError` when the
        snapshot was taken from an incompatible checker (different class,
        ``k``, or delegate algorithm).
        """


class RecheckChecker(Checker):
    """Incremental checking by buffered re-check at geometric checkpoints.

    This is the generic fallback of the protocol: operations are buffered,
    reads whose dictating write has not arrived wait in a pending set, and the
    registered batch algorithm re-verifies the resolved prefix whenever it
    reaches the next geometrically spaced checkpoint.  A NO latches (it is
    final by the monotonicity argument in the module docstring);
    :meth:`finish` verifies the complete buffer with the batch algorithm, so
    final verdicts agree with batch verification exactly.

    Subclasses add cheap per-operation *monitors* that can trigger an
    authoritative check ahead of cadence (see :class:`IncrementalGKChecker`).

    Parameters
    ----------
    k:
        The staleness bound to verify.
    algorithm:
        Batch algorithm name used for authoritative checks (a
        :mod:`~repro.algorithms.registry` name, or ``"auto"``).
    check_interval:
        Resolved-prefix size of the first authoritative check.
    cadence_growth:
        Multiplicative gap between checkpoint sizes (>= 1.0; ``1.0`` checks
        every ``check_interval`` operations, the quadratic-cost extreme).
    max_exact_ops:
        Forwarded to :func:`repro.core.api.verify` for the ``k >= 3`` oracle
        guard.
    """

    def __init__(
        self,
        k: int,
        *,
        algorithm: str = "auto",
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        cadence_growth: float = DEFAULT_CADENCE_GROWTH,
        max_exact_ops: Optional[int] = None,
    ):
        if k < 1:
            raise VerificationError(f"k must be a positive integer, got {k!r}")
        if check_interval < 1:
            raise VerificationError(
                f"check_interval must be >= 1, got {check_interval!r}"
            )
        if cadence_growth < 1.0:
            raise VerificationError(
                f"cadence_growth must be >= 1.0, got {cadence_growth!r}"
            )
        self.k = k
        self.algorithm = algorithm
        self.check_interval = check_interval
        self.cadence_growth = cadence_growth
        self.max_exact_ops = max_exact_ops
        self.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ops_seen(self) -> int:
        """Total operations ingested (pending reads included)."""
        return self._ops_seen

    @property
    def pending_reads(self) -> int:
        """Reads whose dictating write has not yet arrived."""
        return sum(len(reads) for reads in self._pending.values())

    @property
    def key(self) -> Optional[Hashable]:
        """The register this checker is bound to (set by the first keyed op)."""
        return self._key

    @property
    def checks_run(self) -> int:
        """Authoritative (batch) checks executed so far."""
        return self._checks_run

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all ingested operations and start over."""
        self._resolved: List[Operation] = []
        self._pending: Dict[Hashable, List[Operation]] = {}
        self._written: Dict[Hashable, Operation] = {}
        self._key: Optional[Hashable] = None
        self._ops_seen = 0
        self._latched: Optional[StreamVerdict] = None
        self._last_verdict: Optional[StreamVerdict] = None
        self._dirty = False
        self._next_check = self.check_interval
        self._checks_run = 0
        self._finished = False
        self._reset_monitor()

    def feed(self, op: Operation) -> Optional[StreamVerdict]:
        """Ingest one operation; returns a verdict if a check ran on it."""
        if self._finished:
            raise VerificationError(
                "checker already finished; call reset() to start a new stream"
            )
        if op.key is not None:
            if self._key is None:
                self._key = op.key
            elif op.key != self._key:
                raise HistoryError(
                    f"checker for register {self._key!r} received an operation "
                    f"on register {op.key!r}; demultiplex multi-register "
                    "streams with the streaming engine"
                )
        self._ops_seen += 1
        if self._latched is not None:
            return None
        monitor_hit = False
        if op.is_write:
            if op.value in self._written:
                raise DuplicateValueError(
                    f"two writes assign the value {op.value!r} (operations "
                    f"#{self._written[op.value].op_id} and #{op.op_id}); the "
                    "model requires uniquely-valued writes (Section II-C)"
                )
            self._written[op.value] = op
            self._admit(op)
            monitor_hit |= self._monitor(op)
            # A write resolves every read of its value that arrived early.
            for r in self._pending.pop(op.value, ()):
                self._admit(r)
                monitor_hit |= self._monitor(r)
        elif op.value in self._written:
            self._admit(op)
            monitor_hit |= self._monitor(op)
        else:
            self._pending.setdefault(op.value, []).append(op)
        if monitor_hit or len(self._resolved) >= self._next_check:
            return self._run_check()
        return None

    def check_now(self) -> StreamVerdict:
        """Produce a verdict for the stream seen so far (cached when clean)."""
        if self._latched is not None:
            return self._latched
        if not self._dirty and self._last_verdict is not None:
            return self._last_verdict
        return self._run_check()

    def peek(self) -> StreamVerdict:
        """Latest known verdict, possibly one cadence gap stale; O(1)."""
        if self._latched is not None:
            return self._latched
        if self._last_verdict is not None:
            return self._last_verdict
        return self._run_check()

    def finish(self) -> VerificationResult:
        """End the stream; the verdict equals the batch algorithm's.

        Pending reads are folded back into the history, where the batch
        preprocessing reports them as Section II-C anomalies if their
        dictating writes truly never arrived.
        """
        self._finished = True
        if self._latched is not None:
            return self._latched.result
        ops = list(self._resolved)
        for reads in self._pending.values():
            ops.extend(reads)
        result = self._batch_verify(ops)
        self._last_verdict = StreamVerdict(
            result=result, ops_seen=self._ops_seen, final=True
        )
        self._dirty = False
        return result

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the complete checker state as one picklable mapping."""
        return {
            "class": type(self).__name__,
            "k": self.k,
            "algorithm": self.algorithm,
            "check_interval": self.check_interval,
            "cadence_growth": self.cadence_growth,
            "max_exact_ops": self.max_exact_ops,
            "resolved": list(self._resolved),
            "pending": {value: list(reads) for value, reads in self._pending.items()},
            "written": dict(self._written),
            "key": self._key,
            "ops_seen": self._ops_seen,
            "latched": self._latched,
            "last_verdict": self._last_verdict,
            "dirty": self._dirty,
            "next_check": self._next_check,
            "checks_run": self._checks_run,
            "finished": self._finished,
            "monitor": self._monitor_snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Rehydrate the state captured by :meth:`snapshot`."""
        if state.get("class") != type(self).__name__:
            raise VerificationError(
                f"snapshot was taken from a {state.get('class')!r} checker; "
                f"cannot restore into {type(self).__name__!r}"
            )
        if state.get("k") != self.k or state.get("algorithm") != self.algorithm:
            raise VerificationError(
                f"snapshot verifies k={state.get('k')} via "
                f"{state.get('algorithm')!r}; this checker is configured for "
                f"k={self.k} via {self.algorithm!r}"
            )
        self._resolved = list(state["resolved"])
        self._pending = {value: list(reads) for value, reads in state["pending"].items()}
        self._written = dict(state["written"])
        self._key = state["key"]
        self._ops_seen = state["ops_seen"]
        self._latched = state["latched"]
        self._last_verdict = state["last_verdict"]
        self._dirty = state["dirty"]
        self._next_check = state["next_check"]
        self._checks_run = state["checks_run"]
        self._finished = state["finished"]
        self._restore_monitor(state["monitor"])
        # Restored operations carry op_ids minted by another process; keep
        # this process's auto-ids clear of them (ids are the identity of an
        # Operation, so a collision would corrupt op-keyed indexes).
        ids = [op.op_id for op in self._resolved]
        for reads in self._pending.values():
            ids.extend(op.op_id for op in reads)
        from ..core.operation import ensure_op_ids_above

        ensure_op_ids_above(max(ids, default=-1))

    def _monitor_snapshot(self) -> dict:
        """Subclass hook: picklable copy of the incremental monitor state."""
        return {}

    def _restore_monitor(self, state: dict) -> None:
        """Subclass hook: rehydrate :meth:`_monitor_snapshot` output."""
        self._reset_monitor()

    # ------------------------------------------------------------------
    # Internals (and subclass hooks)
    # ------------------------------------------------------------------
    def _admit(self, op: Operation) -> None:
        self._resolved.append(op)
        self._dirty = True

    def _reset_monitor(self) -> None:
        """Subclass hook: clear incremental monitor state."""

    def _monitor(self, op: Operation) -> bool:
        """Subclass hook: O(log n) state update for one resolved operation.

        Returns ``True`` to trigger an immediate authoritative check (a
        *hint*; soundness always comes from the batch re-check).
        """
        return False

    def _batch_verify(self, ops: Sequence[Operation]) -> VerificationResult:
        from ..core.api import verify  # local import: core.api depends on registry

        kwargs = {} if self.max_exact_ops is None else {"max_exact_ops": self.max_exact_ops}
        return verify(
            History(ops, key=self._key),
            self.k,
            algorithm=self.algorithm,
            preprocess=True,
            **kwargs,
        )

    def _run_check(self) -> StreamVerdict:
        self._checks_run += 1
        result = self._batch_verify(self._resolved)
        verdict = StreamVerdict(
            result=result, ops_seen=self._ops_seen, final=not result
        )
        if not result:
            self._latched = verdict
        self._last_verdict = verdict
        self._dirty = False
        self._next_check = max(
            len(self._resolved) + self.check_interval,
            math.ceil(len(self._resolved) * self.cadence_growth),
        )
        return verdict


class _ForwardZoneIndex:
    """Ordered index of (raw) forward zones with O(log n) overlap queries.

    Zones are intervals ``[low, high]`` keyed by the cluster's written value.
    While no two indexed zones overlap, inserting or growing a zone only needs
    to compare against its immediate neighbours in low-endpoint order, so a
    single :func:`bisect.bisect_left` plus two comparisons decides whether the
    Gibbons–Korach forward-overlap condition just fired.
    """

    __slots__ = ("_lows", "_entries", "_current")

    def __init__(self) -> None:
        self._lows: List[float] = []
        self._entries: List[Tuple[float, float, int]] = []  # (low, high, write op_id)
        self._current: Dict[int, Tuple[float, float]] = {}

    def update(self, write_id: int, low: float, high: float) -> bool:
        """Insert or move one zone; returns True iff it overlaps a neighbour."""
        previous = self._current.get(write_id)
        if previous == (low, high):
            return False
        if previous is not None:
            idx = bisect.bisect_left(self._lows, previous[0])
            while idx < len(self._entries) and self._entries[idx][2] != write_id:
                idx += 1
            if idx < len(self._entries):
                del self._lows[idx]
                del self._entries[idx]
        self._current[write_id] = (low, high)
        idx = bisect.bisect_left(self._lows, low)
        overlap = False
        if idx > 0 and self._entries[idx - 1][1] >= low:
            overlap = True
        if idx < len(self._entries) and self._entries[idx][0] <= high:
            overlap = True
        self._lows.insert(idx, low)
        self._entries.insert(idx, (low, high, write_id))
        return overlap

    def containing(self, low: float, high: float) -> bool:
        """True iff some indexed zone contains the interval ``[low, high]``.

        Correct whenever the indexed zones are pairwise disjoint (the only
        regime in which the checker keeps relying on the index): the sole
        candidate container is the zone with the largest low endpoint not
        exceeding ``low``.
        """
        idx = bisect.bisect_right(self._lows, low) - 1
        return idx >= 0 and self._entries[idx][1] >= high

    def snapshot(self) -> dict:
        """Picklable copy of the index state."""
        return {
            "lows": list(self._lows),
            "entries": list(self._entries),
            "current": dict(self._current),
        }

    def restore(self, state: dict) -> None:
        """Rehydrate :meth:`snapshot` output."""
        self._lows = list(state["lows"])
        self._entries = [tuple(entry) for entry in state["entries"]]
        self._current = {
            write_id: tuple(zone) for write_id, zone in state["current"].items()
        }


class IncrementalGKChecker(RecheckChecker):
    """Incremental Gibbons–Korach 1-atomicity (linearizability) checking.

    Maintains cluster/zone state as operations arrive: each resolved
    operation updates its cluster's ``(min finish, max start)`` aggregate in
    O(1), and forward zones live in an ordered index
    (:class:`_ForwardZoneIndex`) that answers both GK conditions —
    forward-forward overlap and backward-zone-inside-forward-zone — against
    the updated zone in O(log n).  Cluster zones are monotone in a useful way
    (``min finish`` only decreases, ``max start`` only increases, so forward
    zones only grow and backward zones only shrink or flip forward), which is
    what makes neighbour-only overlap checks complete while the history is
    still violation-free.

    The index sees *raw* timestamps, whereas the authoritative GK verdict is
    defined on the normalised history (ties broken, writes shortened —
    Section II-C), so an index hit is treated as a trigger for an immediate
    authoritative re-check rather than as a verdict by itself.  After a
    false-alarm trigger the monitor is suppressed until the resolved prefix
    grows past the next cadence point, keeping the worst-case cost at the
    cadence bound.
    """

    def __init__(
        self,
        *,
        algorithm: str = "gk",
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        cadence_growth: float = DEFAULT_CADENCE_GROWTH,
    ):
        super().__init__(
            1,
            algorithm=algorithm,
            check_interval=check_interval,
            cadence_growth=cadence_growth,
        )

    def _reset_monitor(self) -> None:
        self._clusters: Dict[int, Tuple[float, float]] = {}  # write op_id -> (min_f, max_s)
        self._write_ids: Dict[Hashable, int] = {}  # value -> write op_id
        self._fwd = _ForwardZoneIndex()
        self._suppress_until = 0

    def _monitor_snapshot(self) -> dict:
        return {
            "clusters": dict(self._clusters),
            "write_ids": dict(self._write_ids),
            "fwd": self._fwd.snapshot(),
            "suppress_until": self._suppress_until,
        }

    def _restore_monitor(self, state: dict) -> None:
        self._reset_monitor()
        self._clusters = {
            write_id: tuple(zone) for write_id, zone in state["clusters"].items()
        }
        self._write_ids = dict(state["write_ids"])
        self._fwd.restore(state["fwd"])
        self._suppress_until = state["suppress_until"]

    def _monitor(self, op: Operation) -> bool:
        if op.is_write:
            self._write_ids[op.value] = op.op_id
            write_id = op.op_id
            aggregate = (op.finish, op.start)
        else:
            write_id = self._write_ids[op.value]
            current = self._clusters[write_id]
            aggregate = (min(current[0], op.finish), max(current[1], op.start))
        self._clusters[write_id] = aggregate
        min_finish, max_start = aggregate
        if min_finish < max_start:  # forward zone: grows monotonically
            hit = self._fwd.update(write_id, min_finish, max_start)
        else:  # backward zone: check containment in a forward zone
            hit = self._fwd.containing(max_start, min_finish)
        if hit and len(self._resolved) >= self._suppress_until:
            # One authoritative check per alarm; if it comes back YES the raw
            # zones were lying (normalisation moved an endpoint), so stay
            # quiet for at least check_interval more resolved operations —
            # eager checks are a latency optimisation, never a cost hazard.
            self._suppress_until = len(self._resolved) + self.check_interval
            return True
        return False


class IncrementalLBTChecker(RecheckChecker):
    """Incremental 2-atomicity checking on top of LBT.

    LBT constructs its total order *back to front* (Section III), so no true
    incremental formulation is known — the checker maintains the cluster/zone
    aggregates needed for cheap stream statistics, but every verdict comes
    from re-running LBT on the buffered resolved prefix at geometrically
    spaced checkpoints (amortised O(1) re-checks per operation).  NO verdicts
    latch and are final; the finished verdict equals batch LBT exactly.
    """

    def __init__(
        self,
        *,
        algorithm: str = "lbt",
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        cadence_growth: float = DEFAULT_CADENCE_GROWTH,
    ):
        super().__init__(
            2,
            algorithm=algorithm,
            check_interval=check_interval,
            cadence_growth=cadence_growth,
        )

    def _reset_monitor(self) -> None:
        self._write_ids: Dict[Hashable, int] = {}
        self._clusters: Dict[int, Tuple[float, float]] = {}
        self._max_write_finish = float("-inf")
        self._concurrent_write_hint = 0

    def _monitor_snapshot(self) -> dict:
        return {
            "write_ids": dict(self._write_ids),
            "clusters": dict(self._clusters),
            "max_write_finish": self._max_write_finish,
            "concurrent_write_hint": self._concurrent_write_hint,
        }

    def _restore_monitor(self, state: dict) -> None:
        self._write_ids = dict(state["write_ids"])
        self._clusters = {
            write_id: tuple(zone) for write_id, zone in state["clusters"].items()
        }
        self._max_write_finish = state["max_write_finish"]
        self._concurrent_write_hint = state["concurrent_write_hint"]

    def _monitor(self, op: Operation) -> bool:
        if op.is_write:
            self._write_ids[op.value] = op.op_id
            self._clusters[op.op_id] = (op.finish, op.start)
            # Streamed writes arrive roughly in completion order, so a write
            # starting before the latest finish seen is concurrent with it —
            # a running lower bound on the paper's ``c`` parameter.
            if op.start < self._max_write_finish:
                self._concurrent_write_hint += 1
            self._max_write_finish = max(self._max_write_finish, op.finish)
        else:
            write_id = self._write_ids[op.value]
            min_finish, max_start = self._clusters[write_id]
            self._clusters[write_id] = (
                min(min_finish, op.finish),
                max(max_start, op.start),
            )
        return False


def checker_for(
    k: int,
    *,
    algorithm: str = "auto",
    check_interval: int = DEFAULT_CHECK_INTERVAL,
    cadence_growth: float = DEFAULT_CADENCE_GROWTH,
    max_exact_ops: Optional[int] = None,
) -> Checker:
    """Build an incremental checker for staleness bound ``k``.

    ``algorithm="auto"`` selects :class:`IncrementalGKChecker` for ``k = 1``,
    :class:`IncrementalLBTChecker` for ``k = 2``, and a generic
    :class:`RecheckChecker` over the batch ``auto`` selection for ``k >= 3``.
    Any registered batch algorithm name is accepted explicitly; ``"gk"`` keeps
    its dedicated incremental class, and the 2-AV names (``"lbt"``,
    ``"lbt-reference"``, ``"fzf"``) become the re-check delegate of
    :class:`IncrementalLBTChecker`.
    """
    if algorithm == "auto":
        if k == 1:
            return IncrementalGKChecker(
                check_interval=check_interval, cadence_growth=cadence_growth
            )
        if k == 2:
            return IncrementalLBTChecker(
                check_interval=check_interval,
                cadence_growth=cadence_growth,
            )
        return RecheckChecker(
            k,
            algorithm="auto",
            check_interval=check_interval,
            cadence_growth=cadence_growth,
            max_exact_ops=max_exact_ops,
        )
    name = algorithm.strip().lower()
    if name == "gk":
        if k != 1:
            raise VerificationError("GK decides only 1-atomicity")
        return IncrementalGKChecker(
            check_interval=check_interval, cadence_growth=cadence_growth
        )
    if name in ("lbt", "lbt-reference", "fzf"):
        if k != 2:
            raise VerificationError(f"{name} decides only 2-atomicity")
        return IncrementalLBTChecker(
            algorithm=name,
            check_interval=check_interval,
            cadence_growth=cadence_growth,
        )
    # Validate the name eagerly so typos fail at construction, not first check.
    from .registry import get_algorithm

    spec = get_algorithm(name)
    if not spec.supports(k):
        raise VerificationError(
            f"algorithm {spec.name!r} cannot decide {k}-atomicity"
        )
    return RecheckChecker(
        k,
        algorithm=name,
        check_interval=check_interval,
        cadence_growth=cadence_growth,
        max_exact_ops=max_exact_ops,
    )


def restore_checker(state: dict) -> Checker:
    """Reconstruct a checker from a :meth:`Checker.snapshot` mapping.

    The snapshot records the checker class and configuration, so the caller
    needs nothing beyond the stored state — this is what checkpoint files
    deserialise through.
    """
    classes = {
        cls.__name__: cls
        for cls in (RecheckChecker, IncrementalGKChecker, IncrementalLBTChecker)
    }
    try:
        cls = classes[state["class"]]
    except KeyError:
        raise VerificationError(
            f"snapshot names unknown checker class {state.get('class')!r}"
        ) from None
    kwargs = {
        "algorithm": state["algorithm"],
        "check_interval": state["check_interval"],
        "cadence_growth": state["cadence_growth"],
    }
    if cls is RecheckChecker:
        checker = cls(state["k"], max_exact_ops=state["max_exact_ops"], **kwargs)
    else:
        checker = cls(**kwargs)
    checker.restore(state)
    return checker
