"""Weighted k-atomicity verification (k-WAV, Section V).

The weighted k-AV problem attaches a positive integer weight to every write
and requires, for every read, that the total weight of the writes separating
the read from its dictating write — *including the dictating write itself* —
be at most ``k``.  Plain k-AV is the unit-weight special case.  Theorem 5.1
shows k-WAV is NP-complete by reduction from bin packing, so this module only
offers

* an exact exponential solver (shared with :mod:`repro.algorithms.exact`),
* helpers to attach weights to an existing history, and
* a fast *necessary-condition* filter used to prune obviously-infeasible
  instances before invoking the exact solver.

The reduction from bin packing that establishes NP-hardness lives in
:mod:`repro.binpacking.reduction`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

from dataclasses import replace

from ..core.errors import VerificationError
from ..core.history import History
from ..core.preprocess import has_anomalies
from ..core.result import VerificationResult
from .exact import verify_weighted_k_atomic_exact

__all__ = [
    "with_weights",
    "total_write_weight",
    "weighted_lower_bound",
    "verify_weighted_k_atomic",
    "is_weighted_k_atomic",
]


def with_weights(history: History, weights: Mapping[Hashable, int]) -> History:
    """Return a copy of ``history`` whose writes carry the given weights.

    ``weights`` maps written values to positive integer weights; values not
    present keep their current weight (1 by default).  Reads are unaffected.
    """
    for value, weight in weights.items():
        if not isinstance(weight, int) or weight < 1:
            raise VerificationError(
                f"weight for value {value!r} must be a positive integer, got {weight!r}"
            )
    ops = []
    for op in history.operations:
        if op.is_write and op.value in weights:
            ops.append(replace(op, weight=weights[op.value]))
        else:
            ops.append(op)
    return History(ops, key=history.key)


def total_write_weight(history: History) -> int:
    """The total weight of all writes in the history."""
    return sum(w.weight for w in history.writes)


def weighted_lower_bound(history: History) -> int:
    """A quick lower bound on the smallest feasible ``k`` for k-WAV.

    Every read must at least tolerate the weight of its own dictating write
    (the separation includes the dictating write), so ``k`` can never be
    smaller than the maximum weight of a write that has dictated reads.
    Returns 1 for histories without dictated reads.
    """
    bound = 1
    for w in history.writes:
        if history.dictated_reads(w):
            bound = max(bound, w.weight)
    return bound


def verify_weighted_k_atomic(history: History, k: int) -> VerificationResult:
    """Decide weighted k-atomicity of ``history`` for the bound ``k``.

    k-WAV is NP-complete (Theorem 5.1), so the decision is delegated to the
    exact branch-and-bound solver after two cheap filters: anomaly detection
    and the :func:`weighted_lower_bound` necessary condition.
    """
    if k < 1:
        raise VerificationError(f"k must be a positive integer, got {k!r}")
    if history.is_empty:
        return VerificationResult.yes(k, "wkav-exact", witness=())
    if has_anomalies(history):
        return VerificationResult.no(
            k, "wkav-exact", reason="history contains Section II-C anomalies"
        )
    bound = weighted_lower_bound(history)
    if bound > k:
        return VerificationResult.no(
            k,
            "wkav-exact",
            reason=(
                f"some dictated write has weight {bound} > k={k}; the separation "
                "bound counts the dictating write itself, so no total order can help"
            ),
        )
    return verify_weighted_k_atomic_exact(history, k)


def is_weighted_k_atomic(history: History, k: int) -> bool:
    """Boolean convenience wrapper around :func:`verify_weighted_k_atomic`."""
    return bool(verify_weighted_k_atomic(history, k))
