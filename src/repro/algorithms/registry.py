"""Registry mapping algorithm names to verifier callables.

The unified API (:mod:`repro.core.api`) and the benchmark harness select
algorithms by name; this registry is the single source of truth for which
names exist and which staleness bounds each algorithm supports.  Batch
verifiers live in :data:`REGISTRY`; their incremental (streaming)
counterparts live in :data:`CHECKERS` and are constructed per register by the
streaming engine.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..core.errors import VerificationError
from ..core.history import History
from ..core.result import VerificationResult
from . import exact, fzf, gk, lbt
from .online import Checker, IncrementalGKChecker, IncrementalLBTChecker

__all__ = [
    "AlgorithmSpec",
    "REGISTRY",
    "get_algorithm",
    "algorithms_for_k",
    "available_algorithms",
    "CheckerSpec",
    "CHECKERS",
    "get_checker",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata about a registered verification algorithm."""

    name: str
    #: The staleness bounds the algorithm can decide (``None`` = any k).
    supported_k: Optional[Sequence[int]]
    #: ``fn(history, k, **options) -> VerificationResult``.  Registered
    #: adapters accept (and may ignore) keyword options such as ``columnar``;
    #: ad-hoc two-argument callables keep working through :meth:`run`.
    fn: Callable[..., VerificationResult]
    description: str

    def run(self, history: History, k: int, **options) -> VerificationResult:
        """Invoke the verifier, dropping options the callable does not take."""
        if options and not _accepts_options(self.fn):
            options = {}
        return self.fn(history, k, **options)

    def supports(self, k: int) -> bool:
        """True iff the algorithm can decide k-atomicity for this ``k``."""
        return self.supported_k is None or k in self.supported_k

    def __reduce__(self):
        # Pickle registered specs by *name*, never by function object: worker
        # processes of the parallel engine resolve the spec against their own
        # registry, so the adapter closures never cross the process boundary
        # and un-pickling always yields the (single) registered instance.
        # Ad-hoc specs that are not in the registry keep default pickling.
        if REGISTRY.get(self.name) is self:
            return (get_algorithm, (self.name,))
        return super().__reduce__()


def _accepts_options(fn) -> bool:
    """Whether ``fn`` takes keyword options beyond ``(history, k)`` (cached)."""
    cached = _OPTION_SUPPORT.get(fn)
    if cached is None:
        try:
            params = inspect.signature(fn).parameters.values()
        except (TypeError, ValueError):  # pragma: no cover - C callables etc.
            cached = False
        else:
            cached = any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                or (
                    p.kind is inspect.Parameter.KEYWORD_ONLY
                    and p.name in ("columnar", "kernel")
                )
                for p in params
            )
        _OPTION_SUPPORT[fn] = cached
    return cached


_OPTION_SUPPORT: Dict[Callable, bool] = {}


def _gk_adapter(
    history: History,
    k: int,
    *,
    columnar: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> VerificationResult:
    if k != 1:
        raise VerificationError("GK decides only 1-atomicity")
    return gk.verify_1atomic(history, columnar_path=columnar, kernel=kernel)


def _lbt_adapter(
    history: History, k: int, *, kernel: Optional[str] = None, **_options
) -> VerificationResult:
    if k != 2:
        raise VerificationError("LBT decides only 2-atomicity")
    return lbt.verify_2atomic(history, kernel=kernel)


def _lbt_reference_adapter(history: History, k: int, **_options) -> VerificationResult:
    if k != 2:
        raise VerificationError("LBT (reference) decides only 2-atomicity")
    return lbt.verify_2atomic_reference(history)


def _fzf_adapter(
    history: History,
    k: int,
    *,
    columnar: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> VerificationResult:
    if k != 2:
        raise VerificationError("FZF decides only 2-atomicity")
    return fzf.verify_2atomic_fzf(history, columnar_path=columnar, kernel=kernel)


def _exact_adapter(history: History, k: int, **_options) -> VerificationResult:
    return exact.verify_k_atomic_exact(history, k)


REGISTRY: Dict[str, AlgorithmSpec] = {
    "gk": AlgorithmSpec(
        name="gk",
        supported_k=(1,),
        fn=_gk_adapter,
        description="Gibbons–Korach zone conditions for 1-atomicity (linearizability)",
    ),
    "lbt": AlgorithmSpec(
        name="lbt",
        supported_k=(2,),
        fn=_lbt_adapter,
        description="Limited-backtracking 2-AV (Section III), efficient variant",
    ),
    "lbt-reference": AlgorithmSpec(
        name="lbt-reference",
        supported_k=(2,),
        fn=_lbt_reference_adapter,
        description="Literal Figure 2 transcription of LBT (reference implementation)",
    ),
    "fzf": AlgorithmSpec(
        name="fzf",
        supported_k=(2,),
        fn=_fzf_adapter,
        description="Forward-Zones-First 2-AV (Section IV), O(n log n) worst case",
    ),
    "exact": AlgorithmSpec(
        name="exact",
        supported_k=None,
        fn=_exact_adapter,
        description="Exact exponential oracle for any k (testing / k >= 3 fallback)",
    ),
}


@dataclass(frozen=True)
class CheckerSpec:
    """Metadata about a registered incremental (streaming) checker."""

    name: str
    #: The staleness bounds the checker can decide.
    supported_k: Sequence[int]
    #: Zero-argument-friendly factory: ``factory(**options) -> Checker``.
    factory: Callable[..., Checker]
    #: Name of the batch algorithm whose verdicts the checker reproduces.
    batch_counterpart: str
    description: str

    def supports(self, k: int) -> bool:
        """True iff the checker can decide k-atomicity for this ``k``."""
        return k in self.supported_k


CHECKERS: Dict[str, CheckerSpec] = {
    "gk-online": CheckerSpec(
        name="gk-online",
        supported_k=(1,),
        factory=IncrementalGKChecker,
        batch_counterpart="gk",
        description="Incremental Gibbons–Korach 1-AV: O(1) cluster/zone upkeep, "
        "O(log n) forward-zone index, batch-confirmed alarms",
    ),
    "lbt-online": CheckerSpec(
        name="lbt-online",
        supported_k=(2,),
        factory=IncrementalLBTChecker,
        batch_counterpart="lbt",
        description="Incremental 2-AV by buffered LBT re-check at geometric "
        "checkpoints (no true incremental LBT is known)",
    ),
}


def get_checker(name: str) -> CheckerSpec:
    """Look up an incremental checker by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in CHECKERS:
        raise VerificationError(
            f"unknown incremental checker {name!r}; available: {', '.join(sorted(CHECKERS))}"
        )
    return CHECKERS[key]


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up an algorithm by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in REGISTRY:
        raise VerificationError(
            f"unknown algorithm {name!r}; available: {', '.join(sorted(REGISTRY))}"
        )
    return REGISTRY[key]


def algorithms_for_k(k: int) -> Dict[str, AlgorithmSpec]:
    """All registered algorithms that can decide k-atomicity for ``k``."""
    return {name: spec for name, spec in REGISTRY.items() if spec.supports(k)}


def available_algorithms() -> Dict[str, str]:
    """Mapping from algorithm name to its one-line description."""
    return {name: spec.description for name, spec in REGISTRY.items()}
