"""Exact (exponential-time) k-atomicity and weighted k-atomicity oracle.

The polynomial algorithms in this library (GK for ``k = 1``, LBT and FZF for
``k = 2``) are cross-validated against this oracle, which decides k-AV and
k-WAV for *any* ``k`` by a memoised branch-and-bound search over valid total
orders.  It is exponential in the worst case and intended for

* ground-truth checking in the test-suite (histories of up to a few dozen
  operations),
* the ``k >= 3`` fallback of the unified API, and
* the NP-completeness experiments of Section V, where exponential behaviour
  is exactly the point.

Search formulation
------------------
A valid total order is built left to right.  An operation can be appended iff
every operation that *precedes* it (finishes before it starts) has already
been placed.  Placing a read additionally requires that its dictating write
has been placed and that the writes placed after that dictating write keep the
read within the staleness bound (at most ``k - 1`` intervening writes for
k-AV, total separating weight at most ``k`` for k-WAV).  A branch is pruned as
soon as some placed write with still-unplaced dictated reads can no longer
satisfy the bound.  States are memoised on the set of remaining operations
plus the bounded window of recently placed writes that still matter.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.errors import VerificationError
from ..core.history import History
from ..core.operation import Operation
from ..core.preprocess import has_anomalies
from ..core.result import VerificationResult

__all__ = [
    "verify_k_atomic_exact",
    "is_k_atomic_exact",
    "verify_weighted_k_atomic_exact",
    "minimal_k_exact",
]

_ALGORITHM = "exact"
_ALGORITHM_W = "wkav-exact"


class _SearchSpace:
    """Precomputed structure shared by every node of the search."""

    def __init__(self, history: History, k: int, weighted: bool):
        self.history = history
        self.k = k
        self.weighted = weighted
        self.ops: List[Operation] = list(history.operations)
        self.index: Dict[Operation, int] = {op: i for i, op in enumerate(self.ops)}
        n = len(self.ops)
        # preds[i] = indices of operations that must appear before op i.
        self.preds: List[Tuple[int, ...]] = []
        for i, op in enumerate(self.ops):
            self.preds.append(
                tuple(j for j, other in enumerate(self.ops) if other.precedes(op))
            )
        # For reads: index of the dictating write.  For writes: indices of
        # dictated reads.
        self.dictating: Dict[int, int] = {}
        self.dictated: Dict[int, Tuple[int, ...]] = {}
        for i, op in enumerate(self.ops):
            if op.is_write:
                self.dictated[i] = tuple(
                    self.index[r] for r in history.dictated_reads(op)
                )
            else:
                w = history.dictating_write(op)
                self.dictating[i] = self.index[w]
        self.weight: List[int] = [
            op.weight if (weighted and op.is_write) else 1 for op in self.ops
        ]
        self.nodes_explored = 0

    def write_cost(self, idx: int) -> int:
        """The contribution of write ``idx`` to a separation budget."""
        return self.weight[idx]


def _search(
    space: _SearchSpace,
    remaining: FrozenSet[int],
    # ``pending`` maps a placed write (with unplaced dictated reads) to the
    # separation budget already consumed: for k-AV the number of writes placed
    # after it; for k-WAV the total weight placed from it onward (inclusive).
    pending: Tuple[Tuple[int, int], ...],
    prefix: List[int],
    failed: Set[Tuple[FrozenSet[int], Tuple[Tuple[int, int], ...]]],
) -> bool:
    if not remaining:
        return True
    key = (remaining, pending)
    if key in failed:
        return False
    space.nodes_explored += 1
    k = space.k
    weighted = space.weighted
    pending_dict = dict(pending)

    # Candidate next operations: all predecessors placed already.
    for idx in sorted(remaining):
        if any(p in remaining for p in space.preds[idx]):
            continue
        op = space.ops[idx]
        if op.is_read:
            w_idx = space.dictating[idx]
            if w_idx in remaining:
                continue  # dictating write not placed yet
            if w_idx in pending_dict:
                consumed = pending_dict[w_idx]
            else:
                # The write was placed but is no longer tracked, which only
                # happens when it had no unplaced reads — impossible here.
                continue
            if weighted:
                if consumed > k:
                    continue
            else:
                # ``consumed`` counts intervening writes; bound is k - 1.
                if consumed > k - 1:
                    continue
        # Build the child state.
        new_remaining = remaining - {idx}
        new_pending: Dict[int, int] = dict(pending_dict)
        feasible = True
        if op.is_write:
            # Every tracked write gains separation.
            cost = space.write_cost(idx)
            for w, consumed in list(new_pending.items()):
                updated = consumed + (cost if not weighted else cost)
                new_pending[w] = updated
                limit = k if weighted else k - 1
                if updated > limit:
                    feasible = False
                    break
            if feasible:
                unplaced_reads = [r for r in space.dictated[idx] if r in new_remaining]
                if unplaced_reads:
                    new_pending[idx] = space.weight[idx] if weighted else 0
        else:
            w_idx = space.dictating[idx]
            still_unplaced = [
                r for r in space.dictated[w_idx] if r in new_remaining
            ]
            if not still_unplaced:
                new_pending.pop(w_idx, None)
        if not feasible:
            continue
        pending_key = tuple(sorted(new_pending.items()))
        prefix.append(idx)
        if _search(space, frozenset(new_remaining), pending_key, prefix, failed):
            return True
        prefix.pop()
    failed.add(key)
    return False


def _run_exact(history: History, k: int, weighted: bool, algorithm: str) -> VerificationResult:
    if k < 1:
        raise VerificationError(f"k must be a positive integer, got {k!r}")
    if history.is_empty:
        return VerificationResult.yes(k, algorithm, witness=())
    if has_anomalies(history):
        return VerificationResult.no(
            k, algorithm, reason="history contains Section II-C anomalies"
        )
    space = _SearchSpace(history, k, weighted)
    prefix: List[int] = []
    failed: Set[Tuple[FrozenSet[int], Tuple[Tuple[int, int], ...]]] = set()
    ok = _search(space, frozenset(range(len(space.ops))), (), prefix, failed)
    stats = {"nodes_explored": space.nodes_explored, "memoized_failures": len(failed)}
    if ok:
        witness = tuple(space.ops[i] for i in prefix)
        return VerificationResult.yes(k, algorithm, witness=witness, stats=stats)
    return VerificationResult.no(
        k,
        algorithm,
        reason="exhaustive search found no valid k-atomic total order",
        stats=stats,
    )


def verify_k_atomic_exact(history: History, k: int) -> VerificationResult:
    """Decide k-atomicity exactly, for any ``k >= 1``.

    Exponential in the worst case; use only for small histories, testing, or
    as the ``k >= 3`` fallback.  Produces a witness total order on YES.
    """
    return _run_exact(history, k, weighted=False, algorithm=_ALGORITHM)


def is_k_atomic_exact(history: History, k: int) -> bool:
    """Boolean convenience wrapper around :func:`verify_k_atomic_exact`."""
    return bool(verify_k_atomic_exact(history, k))


def verify_weighted_k_atomic_exact(history: History, k: int) -> VerificationResult:
    """Decide *weighted* k-atomicity exactly (Section V).

    The separation constraint counts the total weight of the writes between a
    dictating write and its dictated read, including the dictating write
    itself; it must not exceed ``k``.  With unit weights this coincides with
    plain k-AV for the same ``k`` because the dictating write then contributes
    exactly 1 and up to ``k - 1`` other writes may intervene.
    """
    return _run_exact(history, k, weighted=True, algorithm=_ALGORITHM_W)


def minimal_k_exact(history: History, *, max_k: Optional[int] = None) -> int:
    """Return the smallest ``k`` for which ``history`` is k-atomic.

    Uses the monotonicity of k-atomicity in ``k`` (adding slack never breaks a
    witness) and the fact that an anomaly-free history is always
    ``max(1, W)``-atomic where ``W`` is its number of writes.  Raises
    :class:`~repro.core.errors.VerificationError` if the history is anomalous
    (no finite ``k`` exists).
    """
    if history.is_empty:
        return 1
    if has_anomalies(history):
        raise VerificationError(
            "history contains anomalies; it is not k-atomic for any k"
        )
    upper = max(1, len(history.writes)) if max_k is None else max_k
    lo, hi = 1, upper
    # Verify the upper bound actually holds (it must, see docstring), then
    # binary search for the smallest satisfying k.
    if not is_k_atomic_exact(history, hi):
        raise VerificationError(
            f"history unexpectedly not {hi}-atomic; "
            "was max_k set below the true minimal k?"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if is_k_atomic_exact(history, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo
