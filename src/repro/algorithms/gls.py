"""Zone-based partial 2-AV checker (the pre-LBT/FZF state of the art).

Before this paper, the 2-AV problem had only been solved for a restricted
class of histories (Golab, Li and Shah, PODC 2011), and Section IV points out
why a full solution cannot look at zones alone: two histories with identical
zone sets can differ in 2-atomicity.  This module implements an honest
*partial* checker in that spirit: it reasons purely about zones and therefore
can return a definite verdict only on a restricted class of histories,
answering ``UNKNOWN`` otherwise.

Decision rules (all zone-level, all sound):

* If the Gibbons–Korach 1-atomicity conditions hold, the history is 1-atomic
  and therefore 2-atomic → ``YES``.
* If some chunk contains three or more backward clusters, the history is not
  2-atomic (Lemma 4.3, Case 4) → ``NO``.
* If some chunk's forward zones have "property P" from the Lemma 4.2 proof —
  three forward zones overlapping at a point, or one forward zone overlapping
  more than two others — the history is not 2-atomic → ``NO``.
* Otherwise → ``UNKNOWN`` (a full algorithm such as LBT or FZF is required).

The checker is used as a baseline in the benchmarks: it shows how often zone
information alone settles practical histories, and therefore how much of the
work LBT/FZF actually do.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.chunks import Chunk, compute_chunk_set
from ..core.history import History
from ..core.preprocess import has_anomalies
from ..core.zones import Cluster, build_clusters
from .gk import find_1atomicity_violation

__all__ = ["PartialVerdict", "PartialResult", "verify_2atomic_zones_only"]


class PartialVerdict(enum.Enum):
    """Three-valued verdict of a partial checker."""

    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class PartialResult:
    """Outcome of the zone-only partial 2-AV check."""

    verdict: PartialVerdict
    reason: str = ""

    @property
    def decided(self) -> bool:
        """True iff the checker reached a definite YES or NO."""
        return self.verdict is not PartialVerdict.UNKNOWN

    def __bool__(self) -> bool:
        return self.verdict is PartialVerdict.YES


def _has_property_p(chunk: Chunk) -> Optional[Tuple[Cluster, ...]]:
    """Detect "property P" among the chunk's forward zones.

    Property P (Lemma 4.2 proof): three forward zones overlap at one point,
    or one forward zone overlaps more than two others.  Either pattern forces
    some forward dictating write to have separation at least two, so the
    chunk cannot be 2-atomic.
    Returns the offending clusters, or ``None``.
    """
    forward = sorted(chunk.forward_clusters, key=lambda cl: cl.zone.low)
    # Three zones overlapping at one point: sweep over endpoints.
    events: List[Tuple[float, int, Cluster]] = []
    for cl in forward:
        events.append((cl.zone.low, +1, cl))
        events.append((cl.zone.high, -1, cl))
    events.sort(key=lambda e: (e[0], -e[1]))
    active: List[Cluster] = []
    for _, delta, cl in events:
        if delta == +1:
            active.append(cl)
            if len(active) >= 3:
                return tuple(active[:3])
        else:
            if cl in active:
                active.remove(cl)
    # One zone overlapping more than two others: count overlaps per zone via
    # binary search over the sorted endpoint lists (O(f log f) overall).
    lows = sorted(cl.zone.low for cl in forward)
    highs = sorted(cl.zone.high for cl in forward)
    for cl in forward:
        # Zones overlapping cl: low <= cl.high and high >= cl.low.
        num_low_ok = bisect.bisect_right(lows, cl.zone.high)
        num_high_too_small = bisect.bisect_left(highs, cl.zone.low)
        overlapping = num_low_ok - num_high_too_small - 1  # exclude cl itself
        if overlapping > 2:
            offenders = [
                other
                for other in forward
                if other is not cl and cl.zone.overlaps(other.zone)
            ]
            return (cl,) + tuple(offenders[:3])
    return None


def verify_2atomic_zones_only(history: History) -> PartialResult:
    """Run the zone-only partial 2-AV check described in the module docstring."""
    if history.is_empty:
        return PartialResult(PartialVerdict.YES, "empty history")
    if has_anomalies(history):
        return PartialResult(
            PartialVerdict.NO, "history contains Section II-C anomalies"
        )
    if find_1atomicity_violation(history) is None:
        return PartialResult(
            PartialVerdict.YES,
            "Gibbons–Korach conditions hold: the history is 1-atomic, hence 2-atomic",
        )
    clusters = build_clusters(history)
    chunk_set = compute_chunk_set(history, clusters)
    for chunk in chunk_set.chunks:
        if chunk.num_backward >= 3:
            return PartialResult(
                PartialVerdict.NO,
                f"a chunk spanning [{chunk.interval[0]:g}, {chunk.interval[1]:g}] "
                f"contains {chunk.num_backward} backward clusters",
            )
        offenders = _has_property_p(chunk)
        if offenders is not None:
            values = ", ".join(repr(cl.value) for cl in offenders)
            return PartialResult(
                PartialVerdict.NO,
                f"forward zones of values {values} exhibit property P "
                "(triple overlap or a zone overlapping more than two others)",
            )
    return PartialResult(
        PartialVerdict.UNKNOWN,
        "zone information alone cannot decide this history; run LBT or FZF",
    )
