"""Experiment results: trial rows, aggregation, and the report emitters.

The runner produces one :class:`TrialResult` per executed trial; an
:class:`ExperimentReport` bundles them with the spec context and emits the
three interchange forms the evaluation pipeline consumes:

* **JSON** — the full, schema-versioned document (`load_report` round-trips
  it and is what CI's smoke job validates);
* **CSV** — one row per trial with flattened ``param:*`` / ``metric:*``
  columns, for spreadsheets and plotting scripts;
* **Markdown** — the human-readable report: spec summary plus an aggregated
  table (repeats averaged), and for spectrum experiments the per-k staleness
  spectrum pivot the paper's evaluation figures are built from.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis.report import format_table
from .spec import ExperimentError

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "TrialResult",
    "ExperimentReport",
    "validate_report",
    "load_report",
]

#: Bumped whenever the JSON document shape changes incompatibly.
REPORT_SCHEMA_VERSION = 1

_REQUIRED_TOP = ("schema_version", "name", "kind", "seed", "repeats", "axes", "rows")
_REQUIRED_ROW = ("trial", "repeat", "params", "metrics", "ops", "registers", "elapsed_s")


@dataclass(frozen=True)
class TrialResult:
    """The measured outcome of one trial."""

    #: Grid-point index (shared by all repeats of the same point).
    trial: int
    repeat: int
    #: Axis name → value for this grid point (plus ``engine`` for runtime).
    params: Mapping[str, object]
    #: Measurement name → numeric value (counts, fractions, timings).
    metrics: Mapping[str, float]
    #: Workload size actually verified.
    ops: int
    registers: int
    #: Wall-clock cost of the measured phase (not workload generation).
    elapsed_s: float
    #: The trial's derived seed (replays the workload exactly).
    seed: str = ""

    def to_dict(self) -> Dict:
        return {
            "trial": self.trial,
            "repeat": self.repeat,
            "params": dict(self.params),
            "metrics": dict(self.metrics),
            "ops": self.ops,
            "registers": self.registers,
            "elapsed_s": self.elapsed_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrialResult":
        return cls(
            trial=int(data["trial"]),
            repeat=int(data["repeat"]),
            params=dict(data["params"]),
            metrics=dict(data["metrics"]),
            ops=int(data["ops"]),
            registers=int(data["registers"]),
            elapsed_s=float(data["elapsed_s"]),
            seed=str(data.get("seed", "")),
        )


@dataclass(frozen=True)
class ExperimentReport:
    """Everything one experiment run produced, ready to emit."""

    name: str
    kind: str
    description: str
    seed: int
    repeats: int
    axes: Mapping[str, Tuple[object, ...]]
    rows: Tuple[TrialResult, ...]
    elapsed_s: float
    smoke: bool = False
    source: str = ""
    schema_version: int = REPORT_SCHEMA_VERSION

    # ------------------------------------------------------------------
    @property
    def num_trials(self) -> int:
        """Distinct grid points (× engines) measured."""
        return len({row.trial for row in self.rows})

    @property
    def metric_names(self) -> Tuple[str, ...]:
        """All metric columns, in first-appearance order."""
        names: List[str] = []
        for row in self.rows:
            for name in row.metrics:
                if name not in names:
                    names.append(name)
        return tuple(names)

    @property
    def param_names(self) -> Tuple[str, ...]:
        """All parameter columns, in first-appearance order."""
        names: List[str] = []
        for row in self.rows:
            for name in row.params:
                if name not in names:
                    names.append(name)
        return tuple(names)

    def aggregated(self) -> List[TrialResult]:
        """One row per grid point: metrics and timings averaged over repeats."""
        by_trial: Dict[int, List[TrialResult]] = {}
        for row in self.rows:
            by_trial.setdefault(row.trial, []).append(row)
        merged: List[TrialResult] = []
        for trial in sorted(by_trial):
            group = by_trial[trial]
            metrics: Dict[str, float] = {}
            for name in self.metric_names:
                values = [row.metrics[name] for row in group if name in row.metrics]
                if values:
                    metrics[name] = sum(values) / len(values)
            merged.append(
                TrialResult(
                    trial=trial,
                    repeat=-1,  # sentinel: aggregate over all repeats
                    params=group[0].params,
                    metrics=metrics,
                    ops=round(sum(r.ops for r in group) / len(group)),
                    registers=round(sum(r.registers for r in group) / len(group)),
                    elapsed_s=sum(r.elapsed_s for r in group) / len(group),
                    seed="",
                )
            )
        return merged

    # ------------------------------------------------------------------
    # Emitters
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """The JSON document (schema-versioned; see :func:`validate_report`)."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "seed": self.seed,
            "repeats": self.repeats,
            "smoke": self.smoke,
            "source": self.source,
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "elapsed_s": self.elapsed_s,
            "rows": [row.to_dict() for row in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, default=str)

    def to_csv(self) -> str:
        """Flat CSV: one row per trial, ``param:``/``metric:`` column prefixes."""
        params, metrics = self.param_names, self.metric_names
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            ["trial", "repeat"]
            + [f"param:{p}" for p in params]
            + [f"metric:{m}" for m in metrics]
            + ["ops", "registers", "elapsed_s"]
        )
        for row in self.rows:
            writer.writerow(
                [row.trial, row.repeat]
                + [row.params.get(p, "") for p in params]
                + [row.metrics.get(m, "") for m in metrics]
                + [row.ops, row.registers, f"{row.elapsed_s:.6f}"]
            )
        return buffer.getvalue()

    def to_markdown(self) -> str:
        """The human-readable report (what ``repro experiment run`` prints)."""
        lines: List[str] = [f"# experiment: {self.name}", ""]
        if self.description:
            lines += [self.description, ""]
        lines += [
            f"- kind: `{self.kind}`" + (" (smoke run)" if self.smoke else ""),
            f"- seed: {self.seed}, repeats: {self.repeats}",
            f"- grid: "
            + (
                ", ".join(f"{axis} × {len(vals)}" for axis, vals in self.axes.items())
                or "(single point)"
            ),
            f"- trials: {self.num_trials} ({len(self.rows)} runs), "
            f"total measured time {self.elapsed_s:.2f}s",
            "",
        ]
        if self.kind == "spectrum":
            lines += self._spectrum_section()
        lines += ["## results (averaged over repeats)", ""]
        lines += self._markdown_table(self.aggregated(), self.metric_names)
        return "\n".join(lines) + "\n"

    def _spectrum_section(self) -> List[str]:
        """The per-k staleness spectrum pivot: fraction of registers per bucket."""
        lines = ["## per-k staleness spectrum", ""]
        spectrum_cols = [
            ("frac_k1", "k=1"),
            ("frac_k2", "k=2"),
            ("frac_k3_plus", "k>=3"),
            ("frac_anomalous", "anomalous"),
        ]
        rows = self.aggregated()
        present = [(m, label) for m, label in spectrum_cols if any(m in r.metrics for r in rows)]
        if not present:
            return []
        header = list(self.param_names) + [label for _, label in present]
        body = [
            [str(row.params.get(p, "")) for p in self.param_names]
            + [f"{row.metrics.get(m, 0.0):.1%}" for m, _ in present]
            for row in rows
        ]
        lines += _pipe_table(header, body)
        lines.append("")
        return lines

    def _markdown_table(self, rows: Sequence[TrialResult], metrics: Sequence[str]) -> List[str]:
        header = list(self.param_names) + list(metrics) + ["ops", "registers", "elapsed (s)"]
        body = []
        for row in rows:
            body.append(
                [str(row.params.get(p, "")) for p in self.param_names]
                + [_fmt_metric(row.metrics.get(m)) for m in metrics]
                + [str(row.ops), str(row.registers), f"{row.elapsed_s:.4f}"]
            )
        return _pipe_table(header, body)

    def render_text(self) -> str:
        """Plain-text summary table (terminal-friendly, no Markdown)."""
        rows = self.aggregated()
        return format_table(
            list(self.param_names) + list(self.metric_names) + ["ops", "elapsed (s)"],
            [
                [str(row.params.get(p, "")) for p in self.param_names]
                + [_fmt_metric(row.metrics.get(m)) for m in self.metric_names]
                + [row.ops, f"{row.elapsed_s:.4f}"]
                for row in rows
            ],
        )

    # ------------------------------------------------------------------
    def write(self, out_dir: Union[str, Path]) -> Dict[str, Path]:
        """Write the JSON/CSV/Markdown emitters to ``out_dir``.

        Files are named after the experiment (``<name>.json`` etc.); returns
        the mapping from emitter name to the written path.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "json": out / f"{self.name}.json",
            "csv": out / f"{self.name}.csv",
            "md": out / f"{self.name}.md",
        }
        paths["json"].write_text(self.to_json() + "\n", encoding="utf-8")
        paths["csv"].write_text(self.to_csv(), encoding="utf-8")
        paths["md"].write_text(self.to_markdown(), encoding="utf-8")
        return paths

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<dict>") -> "ExperimentReport":
        """Validate and rehydrate a report document (see :func:`validate_report`)."""
        validate_report(data, source=source)
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            description=str(data.get("description", "")),
            seed=int(data["seed"]),
            repeats=int(data["repeats"]),
            axes={axis: tuple(values) for axis, values in data["axes"].items()},
            rows=tuple(TrialResult.from_dict(row) for row in data["rows"]),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            smoke=bool(data.get("smoke", False)),
            source=str(data.get("source", source)),
            schema_version=int(data["schema_version"]),
        )


def validate_report(data: Mapping, *, source: str = "<dict>") -> None:
    """Check a report document against the schema; raises :class:`ExperimentError`.

    This is what CI's ``repro experiment run --smoke`` job asserts: required
    top-level keys, a supported ``schema_version``, and structurally complete
    rows (params/metrics mappings, numeric sizes).
    """
    if not isinstance(data, Mapping):
        raise ExperimentError(f"{source}: report must be a JSON object")
    missing = [key for key in _REQUIRED_TOP if key not in data]
    if missing:
        raise ExperimentError(f"{source}: report is missing key(s) {missing}")
    version = data["schema_version"]
    if version != REPORT_SCHEMA_VERSION:
        raise ExperimentError(
            f"{source}: unsupported report schema_version {version!r} "
            f"(this library reads {REPORT_SCHEMA_VERSION})"
        )
    if not isinstance(data["axes"], Mapping):
        raise ExperimentError(f"{source}: 'axes' must be a mapping of value lists")
    rows = data["rows"]
    if not isinstance(rows, list):
        raise ExperimentError(f"{source}: 'rows' must be a list")
    for position, row in enumerate(rows):
        if not isinstance(row, Mapping):
            raise ExperimentError(f"{source}: row #{position} is not an object")
        missing = [key for key in _REQUIRED_ROW if key not in row]
        if missing:
            raise ExperimentError(
                f"{source}: row #{position} is missing key(s) {missing}"
            )
        if not isinstance(row["params"], Mapping) or not isinstance(row["metrics"], Mapping):
            raise ExperimentError(
                f"{source}: row #{position} params/metrics must be objects"
            )


def load_report(path: Union[str, Path]) -> ExperimentReport:
    """Load and schema-validate a JSON report written by :meth:`ExperimentReport.write`."""
    p = Path(path)
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ExperimentError(f"cannot read report {p}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"{p}: invalid JSON: {exc}") from exc
    return ExperimentReport.from_dict(data, source=str(p))


# ----------------------------------------------------------------------
def _fmt_metric(value: Optional[float]) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


def _pipe_table(header: Sequence[str], body: Sequence[Sequence[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |", "|" + "---|" * len(header)]
    lines += ["| " + " | ".join(row) + " |" for row in body]
    return lines
