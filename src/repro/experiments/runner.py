"""The experiment runner: expand a spec, execute trials, collect results.

Workload generation and measurement are separated so a runtime experiment
can time several engine configurations over the *identical* workload (the
trial seed deliberately ignores the engine axis), and so measured time never
includes workload generation.

Two workload kinds:

* ``synthetic`` — :func:`repro.workloads.synthetic.synthetic_trace`:
  per-register practical histories with controlled write ratio, injected
  staleness and register-size skew.  Fully deterministic from the seed.
* ``simulation`` — a :class:`repro.simulation.SloppyQuorumStore` run: the
  Dynamo-style store the paper audits, with quorum sizes, replica latency
  and YCSB-style key-popularity distributions as knobs.

Two measurement kinds:

* ``spectrum`` — the per-k staleness spectrum
  (:func:`repro.analysis.spectrum.atomicity_spectrum`) plus staleness
  statistics: how many registers are 1-atomic / 2-atomic / worse, how stale
  the reads were;
* ``runtime`` — wall-clock verification time per engine configuration
  (batch / streaming, algorithm choice, columnar on/off, executors).

A third measurement kind quantifies the paper's global-clock assumption:

* ``skew`` — re-stamp the identical workload through a per-client
  :class:`~repro.simulation.clock.SkewedClocks` model
  (``clock_skew_ms`` / ``clock_drift_ppm`` knobs, usually swept as grid
  axes) and report the *verdict flip rate*: the fraction of registers whose
  k-atomicity verdict differs between the skewed trace and its perfectly
  clocked twin, per k in ``k_values``.

A fourth evaluates the adaptive tier ladder:

* ``tiering`` — calibrate a :class:`~repro.engine.tiering.CostModel` on the
  trial workload, run the identical trace through the exact engine and the
  tiered one (the ``tier`` knob picks ``screen`` or ``auto``), and report
  the speedup, escalation/screen rates, the cost model's relative fit
  error, and a strict verdict+reason parity bit per k in ``k_values`` —
  the evidence that the screen rung never changes an answer.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..analysis.metrics import staleness_stats
from ..analysis.spectrum import StalenessBucket, atomicity_spectrum
from ..core.history import MultiHistory
from ..core.windows import WindowPolicy
from ..engine import Engine, StreamingEngine
from ..simulation import (
    ExponentialLatency,
    QuorumConfig,
    SloppyQuorumStore,
    StoreConfig,
)
from ..workloads import (
    HotspotKeys,
    SingleKey,
    UniformKeys,
    WorkloadSpec,
    ZipfianKeys,
)
from ..workloads.synthetic import synthetic_trace
from .report import ExperimentReport, TrialResult
from .spec import ExperimentError, ExperimentSpec, TrialSpec

__all__ = ["run_experiment", "run_trial", "build_workload"]

_SYNTHETIC_KNOBS = {
    "registers", "ops_per_register", "num_clients", "write_ratio",
    "staleness_probability", "max_staleness", "size_skew",
}
_SIMULATION_KNOBS = {
    "clients", "ops_per_client", "write_ratio", "keys", "key_distribution",
    "zipf_theta", "hot_fraction", "hot_traffic", "replicas", "read_quorum",
    "write_quorum", "read_repair", "mean_latency_ms", "think_time_ms",
    "drop_probability",
}
#: Measurement knobs of the ``skew`` kind; they ride the workload table (so
#: grids can sweep them) but do not affect workload generation itself.
_SKEW_KNOBS = {"clock_skew_ms", "clock_drift_ppm"}
#: Measurement knobs of the ``tiering`` kind, same arrangement: ``tier``
#: picks the policy under test without changing the generated workload.
_TIERING_KNOBS = {"tier"}


def _trial_rng(seed: str) -> random.Random:
    """The trial's deterministic random stream (string seeding is stable)."""
    return random.Random(seed)


def build_workload(config: Mapping[str, object], seed: str) -> MultiHistory:
    """Generate the trial's multi-register trace from its workload config."""
    kind = config.get("kind", "synthetic")
    knobs = {
        k: v
        for k, v in config.items()
        if k != "kind" and k not in _SKEW_KNOBS and k not in _TIERING_KNOBS
    }
    if kind == "synthetic":
        unknown = set(knobs) - _SYNTHETIC_KNOBS
        if unknown:
            raise ExperimentError(
                f"unknown synthetic workload knob(s) {sorted(unknown)}; "
                f"expected {sorted(_SYNTHETIC_KNOBS)}"
            )
        return synthetic_trace(
            _trial_rng(seed),
            num_registers=int(knobs.get("registers", 16)),
            ops_per_register=int(knobs.get("ops_per_register", 200)),
            num_clients=int(knobs.get("num_clients", 8)),
            write_ratio=float(knobs.get("write_ratio", 0.2)),
            staleness_probability=float(knobs.get("staleness_probability", 0.05)),
            max_staleness=int(knobs.get("max_staleness", 1)),
            size_skew=float(knobs.get("size_skew", 0.0)),
        )
    if kind == "simulation":
        unknown = set(knobs) - _SIMULATION_KNOBS
        if unknown:
            raise ExperimentError(
                f"unknown simulation workload knob(s) {sorted(unknown)}; "
                f"expected {sorted(_SIMULATION_KNOBS)}"
            )
        num_keys = int(knobs.get("keys", 4))
        distribution = str(knobs.get("key_distribution", "zipfian"))
        if distribution == "zipfian":
            selector = ZipfianKeys(num_keys, theta=float(knobs.get("zipf_theta", 0.99)))
        elif distribution == "uniform":
            selector = UniformKeys(num_keys)
        elif distribution == "hotspot":
            selector = HotspotKeys(
                num_keys,
                hot_fraction=float(knobs.get("hot_fraction", 0.1)),
                hot_traffic=float(knobs.get("hot_traffic", 0.9)),
            )
        elif distribution == "single":
            selector = SingleKey()
        else:
            raise ExperimentError(
                f"unknown key_distribution {distribution!r} "
                "(expected zipfian/uniform/hotspot/single)"
            )
        store_seed = _trial_rng(seed).getrandbits(32)
        store = SloppyQuorumStore(
            StoreConfig(
                quorum=QuorumConfig(
                    num_replicas=int(knobs.get("replicas", 5)),
                    read_quorum=int(knobs.get("read_quorum", 1)),
                    write_quorum=int(knobs.get("write_quorum", 2)),
                    read_repair=bool(knobs.get("read_repair", False)),
                ),
                latency=ExponentialLatency(
                    mean_ms=float(knobs.get("mean_latency_ms", 3.0))
                ),
                drop_probability=float(knobs.get("drop_probability", 0.0)),
            ),
            seed=store_seed,
        )
        workload = WorkloadSpec(
            num_clients=int(knobs.get("clients", 8)),
            operations_per_client=int(knobs.get("ops_per_client", 50)),
            write_ratio=float(knobs.get("write_ratio", 0.4)),
            key_selector=selector,
            mean_think_time_ms=float(knobs.get("think_time_ms", 2.0)),
            seed=store_seed,
        )
        return store.run(workload).history
    raise ExperimentError(f"unknown workload kind {kind!r}")


# ----------------------------------------------------------------------
# Measurements
# ----------------------------------------------------------------------
def _measure_spectrum(trace: MultiHistory, trial: TrialSpec) -> Dict[str, float]:
    spectrum = atomicity_spectrum(trace)
    counts = spectrum.counts()
    total = max(1, spectrum.num_keys)
    stale_reads = reads = 0
    max_lag = 0
    for key in trace.keys():
        history = trace[key]
        if history.is_empty or any(
            history.dictating_write(r) is None for r in history.reads
        ):
            continue
        stats = staleness_stats(history)
        reads += stats.num_reads
        stale_reads += stats.stale_reads
        max_lag = max(max_lag, stats.max_value_lag)
    return {
        "registers_k1": counts.get(StalenessBucket.ATOMIC, 0),
        "registers_k2": counts.get(StalenessBucket.TWO_ATOMIC, 0),
        "registers_k3_plus": counts.get(StalenessBucket.THREE_PLUS, 0),
        "registers_anomalous": counts.get(StalenessBucket.ANOMALOUS, 0),
        "frac_k1": counts.get(StalenessBucket.ATOMIC, 0) / total,
        "frac_k2": counts.get(StalenessBucket.TWO_ATOMIC, 0) / total,
        "frac_k3_plus": counts.get(StalenessBucket.THREE_PLUS, 0) / total,
        "frac_anomalous": counts.get(StalenessBucket.ANOMALOUS, 0) / total,
        "frac_within_2": spectrum.fraction_within_2,
        "stale_read_fraction": stale_reads / reads if reads else 0.0,
        "max_value_lag": max_lag,
    }


def _measure_runtime(trace: MultiHistory, trial: TrialSpec) -> Dict[str, float]:
    engine_config = dict(trial.engine or {"name": "batch-auto"})
    engine_config.pop("name", None)
    mode = str(engine_config.pop("mode", "batch"))
    k = int(engine_config.pop("k", 2))
    algorithm = str(engine_config.pop("algorithm", "auto"))
    executor = str(engine_config.pop("executor", "serial"))
    jobs = engine_config.pop("jobs", None)
    jobs = int(jobs) if jobs is not None else None
    columnar = engine_config.pop("columnar", None)
    columnar = bool(columnar) if columnar is not None else None
    window = int(engine_config.pop("window", 256))
    stream_mode = str(engine_config.pop("stream_mode", "rolling"))
    if engine_config:
        raise ExperimentError(
            f"unknown engine knob(s) {sorted(engine_config)} for trial "
            f"{trial.params!r}"
        )
    if mode == "batch":
        engine = Engine(
            executor=executor,
            jobs=jobs,
            algorithm=algorithm,
            columnar=columnar,
        )
        t0 = time.perf_counter()
        report = engine.verify_trace(trace, k)
        elapsed = time.perf_counter() - t0
        yes = sum(1 for r in report.results.values() if r)
        registers = report.num_registers
        ops = report.total_ops
    elif mode == "stream":
        ops_stream = sorted(
            (op for key in trace.keys() for op in trace[key].operations),
            key=lambda op: (op.finish, op.op_id),
        )
        engine = StreamingEngine(
            window=WindowPolicy.count(window),
            mode=stream_mode,
            algorithm=algorithm,
            executor=executor,
            jobs=jobs,
        )
        t0 = time.perf_counter()
        report = engine.verify_stream(ops_stream, k)
        elapsed = time.perf_counter() - t0
        yes = sum(1 for r in report.results.values() if r)
        registers = report.num_registers
        ops = report.total_ops
    else:
        raise ExperimentError(f"unknown engine mode {mode!r} (expected batch/stream)")
    return {
        "verify_s": elapsed,
        "ops_per_s": ops / elapsed if elapsed > 0 else 0.0,
        "registers_yes": yes,
        "registers_no": registers - yes,
    }


def _measure_skew(
    trace: MultiHistory, trial: TrialSpec, k_values: Tuple[int, ...]
) -> Dict[str, float]:
    """Verdict flip rate between ``trace`` and its clock-skewed re-stamp.

    The skewed twin runs through the *identical* verifier: any verdict
    change is attributable to the clock model alone, which is exactly the
    sensitivity to the paper's global-clock assumption the experiment
    quantifies.
    """
    from ..simulation.clock import SkewedClocks
    from ..workloads.chaos import apply_clock_skew

    skew_ms = float(trial.workload.get("clock_skew_ms", 0.0))
    drift_ppm = float(trial.workload.get("clock_drift_ppm", 0.0))
    model = SkewedClocks(
        max_skew_ms=skew_ms,
        drift_ppm=drift_ppm,
        seed=_trial_rng(trial.seed).getrandbits(32),
    )
    ops = [op for key in trace.keys() for op in trace[key].operations]
    skewed = MultiHistory(apply_clock_skew(ops, model))
    engine = Engine()
    total = max(1, len(trace.keys()))
    metrics: Dict[str, float] = {}
    total_flips = 0
    for k in k_values:
        base = engine.verify_trace(trace, k).results
        after = engine.verify_trace(skewed, k).results
        flips = sum(
            1 for key in base if bool(base[key]) != bool(after.get(key))
        )
        metrics[f"flips_k{k}"] = flips
        metrics[f"flip_rate_k{k}"] = flips / total
        total_flips += flips
    metrics["flip_rate"] = total_flips / (total * max(1, len(k_values)))
    return metrics


def _measure_tiering(
    trace: MultiHistory, trial: TrialSpec, k_values: Tuple[int, ...]
) -> Dict[str, float]:
    """Tiered-vs-exact cost and parity over the identical workload.

    The cost model is calibrated on the trial's own trace (so the knob
    picks reflect this machine, not the committed baselines), then the same
    registers run through the exact engine and the tiered one.  Parity is
    strict: every verdict must match, and every NO must carry the identical
    reason — the tiered path only ever re-badges YES answers.
    """
    from dataclasses import replace as dc_replace

    from ..core.errors import VerificationError
    from ..engine.tiering import CostModel, get_tier_policy

    tier = str(trial.workload.get("tier", "auto"))
    try:
        base_policy = get_tier_policy(tier)
    except VerificationError as exc:
        raise ExperimentError(str(exc)) from exc
    if base_policy is None:
        raise ExperimentError(
            "tiering experiments compare a screening tier against exact; "
            f"set tier to 'screen' or 'auto', not {tier!r}"
        )
    histories = {key: trace[key] for key in trace.keys()}
    model = CostModel.calibrate(histories)
    policy = dc_replace(base_policy, cost_model=model)
    fit_errors = list(model.fit_errors.values())
    metrics: Dict[str, float] = {
        "fit_error": sum(fit_errors) / len(fit_errors) if fit_errors else 0.0,
    }
    parity = 1.0
    for k in k_values:
        t0 = time.perf_counter()
        exact = Engine().verify_trace(trace, k)
        exact_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        tiered = Engine(tier=policy).verify_trace(trace, k)
        tiered_s = time.perf_counter() - t0
        for key, exact_result in exact.results.items():
            tiered_result = tiered.results.get(key)
            if tiered_result is None or bool(exact_result) != bool(tiered_result):
                parity = 0.0
            elif not exact_result and exact_result.reason != tiered_result.reason:
                parity = 0.0
        stats = dict(tiered.tier_stats)
        metrics[f"exact_s_k{k}"] = exact_s
        metrics[f"tiered_s_k{k}"] = tiered_s
        metrics[f"speedup_k{k}"] = exact_s / tiered_s if tiered_s > 0 else 0.0
        metrics[f"screen_rate_k{k}"] = float(stats.get("screen_rate", 0.0))
        metrics[f"escalation_rate_k{k}"] = float(stats.get("escalation_rate", 0.0))
    metrics["parity_ok"] = parity
    return metrics


# ----------------------------------------------------------------------
# Trial and experiment execution
# ----------------------------------------------------------------------
def run_trial(
    spec: ExperimentSpec,
    trial: TrialSpec,
    *,
    workload: Optional[MultiHistory] = None,
) -> TrialResult:
    """Execute one trial; ``workload`` short-circuits regeneration when the
    caller already built the trace for this seed (runtime engine sweeps)."""
    trace = workload if workload is not None else build_workload(trial.workload, trial.seed)
    ops = sum(len(trace[key]) for key in trace.keys())
    t0 = time.perf_counter()
    if spec.kind == "spectrum":
        metrics = _measure_spectrum(trace, trial)
    elif spec.kind == "skew":
        metrics = _measure_skew(trace, trial, spec.k_values)
    elif spec.kind == "tiering":
        metrics = _measure_tiering(trace, trial, spec.k_values)
    else:
        metrics = _measure_runtime(trace, trial)
    elapsed = time.perf_counter() - t0
    return TrialResult(
        trial=trial.index,
        repeat=trial.repeat,
        params=trial.params,
        metrics=metrics,
        ops=ops,
        registers=len(trace.keys()),
        elapsed_s=elapsed,
        seed=trial.seed,
    )


def run_experiment(
    spec: ExperimentSpec,
    *,
    smoke: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> ExperimentReport:
    """Run every trial of ``spec`` and aggregate the rows into a report.

    ``smoke=True`` runs the shrunk :meth:`~ExperimentSpec.smoke` grid — the
    CI configuration.  ``progress`` (when given) receives one line per
    completed trial.
    """
    effective = spec.smoke() if smoke else spec
    trials = effective.trials()
    rows: List[TrialResult] = []
    workload_cache: Dict[str, MultiHistory] = {}
    t0 = time.perf_counter()
    for trial in trials:
        trace = workload_cache.get(trial.seed)
        if trace is None:
            trace = build_workload(trial.workload, trial.seed)
            workload_cache.clear()  # one workload at a time: bounded memory
            workload_cache[trial.seed] = trace
        result = run_trial(effective, trial, workload=trace)
        rows.append(result)
        if progress is not None:
            progress(
                f"trial {trial.index} repeat {trial.repeat} "
                f"{dict(trial.params)!r}: {result.ops} ops, "
                f"{result.elapsed_s:.3f}s"
            )
    axes: Dict[str, Tuple[object, ...]] = dict(effective.grid)
    if effective.kind == "runtime":
        axes["engine"] = tuple(str(e["name"]) for e in effective.engines)
    return ExperimentReport(
        name=effective.name,
        kind=effective.kind,
        description=effective.description,
        seed=effective.seed,
        repeats=effective.repeats,
        axes=axes,
        rows=tuple(rows),
        elapsed_s=time.perf_counter() - t0,
        smoke=smoke,
        source=effective.source,
    )
