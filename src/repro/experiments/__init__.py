"""Declarative experiment harness: reproduce the paper's evaluation.

The harness turns a small declarative spec (TOML or JSON) into a parameter
grid, runs one trial per grid point (times repeats), and aggregates the
:class:`~repro.experiments.report.TrialResult` rows into an
:class:`~repro.experiments.report.ExperimentReport` with CSV / JSON /
Markdown emitters.  Two experiment kinds cover the paper's evaluation axes:

* ``"spectrum"`` — per-k staleness spectra of a workload as the knobs vary
  (read/write ratio, key-popularity skew, quorum sizes): how many registers
  are 1-atomic, 2-atomic, worse;
* ``"runtime"`` — wall-clock scaling of the verification configurations
  (GK / LBT / FZF, batch vs. online vs. columnar, executors) over growing
  traces.

Canned specs live in the repository's ``experiments/`` directory; run them
with ``repro experiment run experiments/staleness_spectrum.toml``.
"""

from .report import (
    REPORT_SCHEMA_VERSION,
    ExperimentReport,
    TrialResult,
    load_report,
    validate_report,
)
from .runner import run_experiment, run_trial
from .spec import ExperimentError, ExperimentSpec, TrialSpec, load_spec

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "ExperimentError",
    "ExperimentReport",
    "ExperimentSpec",
    "TrialResult",
    "TrialSpec",
    "load_report",
    "load_spec",
    "run_experiment",
    "run_trial",
    "validate_report",
]
