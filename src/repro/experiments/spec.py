"""Experiment specifications: declarative grids over workload/engine knobs.

A spec file (TOML or JSON) describes one experiment::

    [experiment]
    name = "staleness-spectrum"
    kind = "spectrum"              # or "runtime" / "skew" / "tiering"
    seed = 7
    repeats = 1

    [workload]
    kind = "simulation"            # or "synthetic"
    clients = 8
    ops_per_client = 40

    [grid]                         # every combination becomes one trial
    write_ratio = [0.1, 0.3, 0.5]
    zipf_theta = [0.0, 0.99]

    [[engines]]                    # runtime kind only: timed configurations
    name = "fzf-columnar"
    algorithm = "fzf"
    k = 2

Grid axes override the base ``[workload]`` values per trial, so the same
knob can be fixed (workload) or swept (grid).  Trial seeds derive
deterministically from the experiment seed, the grid point and the repeat
index: re-running a spec reproduces the identical workloads.

    >>> spec = ExperimentSpec.from_dict({
    ...     "experiment": {"name": "demo", "kind": "spectrum"},
    ...     "workload": {"kind": "synthetic", "registers": 4},
    ...     "grid": {"write_ratio": [0.1, 0.5]},
    ... })
    >>> [t.params for t in spec.trials()]
    [{'write_ratio': 0.1}, {'write_ratio': 0.5}]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ReproError

__all__ = ["ExperimentError", "ExperimentSpec", "TrialSpec", "load_spec"]


class ExperimentError(ReproError):
    """An experiment spec or report is malformed, or the harness was misused."""


_KINDS = ("spectrum", "runtime", "skew", "tiering")
_WORKLOAD_KINDS = ("synthetic", "simulation")
_TOP_LEVEL_KEYS = {"experiment", "workload", "grid", "engines"}
_EXPERIMENT_KEYS = {"name", "kind", "description", "seed", "repeats", "k_values"}

#: Caps applied by :meth:`ExperimentSpec.smoke` so CI grids stay tiny.
_SMOKE_CAPS = {
    "registers": 4,
    "ops_per_register": 60,
    "num_clients": 4,
    "clients": 4,
    "ops_per_client": 15,
    "keys": 4,
}


@dataclass(frozen=True)
class TrialSpec:
    """One point of the expanded grid: what a single trial should run."""

    #: 0-based index over the expanded grid (stable across repeats).
    index: int
    #: Repeat number, 0-based.
    repeat: int
    #: The grid-point parameters (axis name → chosen value).  For runtime
    #: experiments this includes the ``engine`` axis (the config's name).
    params: Mapping[str, object]
    #: Full workload configuration with the grid point folded in.
    workload: Mapping[str, object]
    #: The timed engine configuration (runtime kind only).
    engine: Optional[Mapping[str, object]]
    #: Deterministic seed string for this trial's random streams.
    seed: str


@dataclass(frozen=True)
class ExperimentSpec:
    """A validated, immutable experiment description."""

    name: str
    kind: str
    description: str = ""
    seed: int = 0
    repeats: int = 1
    k_values: Tuple[int, ...] = (1, 2)
    workload: Mapping[str, object] = field(default_factory=dict)
    grid: Mapping[str, Tuple[object, ...]] = field(default_factory=dict)
    engines: Tuple[Mapping[str, object], ...] = ()
    #: Where the spec was loaded from (informational; "<dict>" for in-memory).
    source: str = "<dict>"

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping, *, source: str = "<dict>") -> "ExperimentSpec":
        """Validate a parsed spec document into an :class:`ExperimentSpec`."""
        if not isinstance(data, Mapping):
            raise ExperimentError(f"{source}: spec must be a table/object")
        unknown = set(data) - _TOP_LEVEL_KEYS
        if unknown:
            raise ExperimentError(
                f"{source}: unknown top-level section(s) {sorted(unknown)}; "
                f"expected {sorted(_TOP_LEVEL_KEYS)}"
            )
        experiment = data.get("experiment")
        if not isinstance(experiment, Mapping) or "name" not in experiment:
            raise ExperimentError(
                f"{source}: spec needs an [experiment] section with a name"
            )
        unknown = set(experiment) - _EXPERIMENT_KEYS
        if unknown:
            raise ExperimentError(
                f"{source}: unknown [experiment] key(s) {sorted(unknown)}"
            )
        kind = experiment.get("kind", "spectrum")
        if kind not in _KINDS:
            raise ExperimentError(
                f"{source}: experiment kind must be one of {_KINDS}, got {kind!r}"
            )
        repeats = int(experiment.get("repeats", 1))
        if repeats < 1:
            raise ExperimentError(f"{source}: repeats must be >= 1, got {repeats}")
        k_values = tuple(int(k) for k in experiment.get("k_values", (1, 2)))
        if any(k < 1 for k in k_values) or not k_values:
            raise ExperimentError(f"{source}: k_values must be positive, got {k_values}")

        workload = dict(data.get("workload", {}))
        workload.setdefault("kind", "synthetic")
        if workload["kind"] not in _WORKLOAD_KINDS:
            raise ExperimentError(
                f"{source}: workload kind must be one of {_WORKLOAD_KINDS}, "
                f"got {workload['kind']!r}"
            )

        grid_raw = data.get("grid", {})
        if not isinstance(grid_raw, Mapping):
            raise ExperimentError(f"{source}: [grid] must be a table of value lists")
        grid: Dict[str, Tuple[object, ...]] = {}
        for axis, values in grid_raw.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ExperimentError(
                    f"{source}: grid axis {axis!r} must be a non-empty list, "
                    f"got {values!r}"
                )
            grid[axis] = tuple(values)

        engines_raw = data.get("engines", ())
        if not isinstance(engines_raw, (list, tuple)):
            raise ExperimentError(f"{source}: [[engines]] must be an array of tables")
        engines: List[Mapping[str, object]] = []
        for position, engine in enumerate(engines_raw, start=1):
            if not isinstance(engine, Mapping) or "name" not in engine:
                raise ExperimentError(
                    f"{source}: engine #{position} must be a table with a name"
                )
            engines.append(dict(engine))
        if kind == "runtime" and not engines:
            # A runtime experiment with no engine table times the default
            # batch configuration, named after what it runs.
            engines = [{"name": "batch-auto"}]

        return cls(
            name=str(experiment["name"]),
            kind=kind,
            description=str(experiment.get("description", "")),
            seed=int(experiment.get("seed", 0)),
            repeats=repeats,
            k_values=k_values,
            workload=workload,
            grid=grid,
            engines=tuple(engines),
            source=source,
        )

    # ------------------------------------------------------------------
    @property
    def axes(self) -> Tuple[str, ...]:
        """Grid axis names, in spec order."""
        return tuple(self.grid)

    def grid_points(self) -> List[Dict[str, object]]:
        """Expand the grid into its cartesian product, in row-major order."""
        points: List[Dict[str, object]] = [{}]
        for axis, values in self.grid.items():
            points = [dict(p, **{axis: v}) for p in points for v in values]
        return points

    def trials(self) -> List[TrialSpec]:
        """Expand the spec into the full trial list (grid × engines × repeats).

        The engine axis runs *innermost* and the seed ignores it on purpose:
        every timed configuration of a runtime trial sees the identical
        workload, and trials sharing a workload are consecutive — which is
        what lets the runner hold a single generated workload at a time.
        """
        trials: List[TrialSpec] = []
        engine_axis: Sequence[Optional[Mapping[str, object]]] = (
            self.engines if self.kind == "runtime" else (None,)
        )
        for point_index, point in enumerate(self.grid_points()):
            workload = dict(self.workload)
            workload.update(point)
            for repeat in range(self.repeats):
                seed = f"{self.name}:{self.seed}:{sorted(point.items())!r}:{repeat}"
                for engine_index, engine in enumerate(engine_axis):
                    params = dict(point)
                    if engine is not None:
                        params["engine"] = engine["name"]
                    trials.append(
                        TrialSpec(
                            index=point_index * len(engine_axis) + engine_index,
                            repeat=repeat,
                            params=params,
                            workload=workload,
                            engine=engine,
                            seed=seed,
                        )
                    )
        return trials

    def smoke(self) -> "ExperimentSpec":
        """A shrunk copy for CI: one grid point, tiny workload, one repeat.

        The first value of every axis is kept (so the schema exercises every
        axis column) and size-like workload knobs are capped, which keeps the
        smoke run to a few seconds while producing a structurally complete
        report.
        """
        grid = {axis: values[:1] for axis, values in self.grid.items()}
        workload = {
            knob: (min(int(value), _SMOKE_CAPS[knob]) if knob in _SMOKE_CAPS else value)
            for knob, value in self.workload.items()
        }
        return replace(self, grid=grid, workload=workload, repeats=1)


def load_spec(path: Union[str, Path]) -> ExperimentSpec:
    """Load an experiment spec from a ``.toml`` or ``.json`` file."""
    p = Path(path)
    try:
        text = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise ExperimentError(f"cannot read experiment spec {p}: {exc}") from exc
    if p.suffix.lower() == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError as exc:  # Python 3.10: no stdlib TOML parser
            raise ExperimentError(
                f"{p}: TOML specs need Python >= 3.11 (tomllib); "
                "use the .json form of the spec instead"
            ) from exc
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ExperimentError(f"{p}: invalid TOML: {exc}") from exc
    elif p.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"{p}: invalid JSON: {exc}") from exc
    else:
        raise ExperimentError(
            f"{p}: unsupported spec extension {p.suffix!r} (expected .toml or .json)"
        )
    return ExperimentSpec.from_dict(data, source=str(p))
