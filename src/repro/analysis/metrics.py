"""Descriptive metrics over histories.

These metrics do not decide k-atomicity by themselves (that is what the
algorithms are for); they quantify *how much* staleness and concurrency a
history exhibits, which is the information an operator needs when deciding
whether to turn the consistency "tuning knobs" the paper's introduction talks
about (quorum sizes, replication factor).

Two complementary staleness proxies are provided per read:

* **value lag** — the number of writes that both *succeed* the read's
  dictating write and *precede* the read in real time.  Every such write must
  separate the read from its dictating write in any valid total order, so the
  value lag is a certified lower bound on the read's staleness (a read with
  value lag ``>= k`` proves the history is not k-atomic).
* **time lag** — how long before the read's start its dictating write had
  already been superseded by a newer (real-time-preceding) write; 0 for reads
  of fresh values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.chunks import compute_chunk_set
from ..core.history import History
from ..core.operation import Operation
from ..core.zones import build_clusters

__all__ = [
    "read_value_lag",
    "read_time_lag",
    "StalenessStats",
    "staleness_stats",
    "HistoryProfile",
    "profile_history",
]


def read_value_lag(history: History, op: Operation) -> int:
    """The certified staleness lower bound of a single read (see module docs)."""
    if not op.is_read:
        raise ValueError("read_value_lag expects a read operation")
    dictating = history.dictating_write(op)
    if dictating is None:
        raise ValueError("read has no dictating write; normalise the history first")
    lag = 0
    for w in history.writes:
        if dictating.precedes(w) and w.precedes(op):
            lag += 1
    return lag


def read_time_lag(history: History, op: Operation) -> float:
    """How stale (in time units) the read's value already was at its start."""
    if not op.is_read:
        raise ValueError("read_time_lag expects a read operation")
    dictating = history.dictating_write(op)
    if dictating is None:
        raise ValueError("read has no dictating write; normalise the history first")
    superseded = [
        w for w in history.writes if dictating.precedes(w) and w.precedes(op)
    ]
    if not superseded:
        return 0.0
    earliest_newer_finish = min(w.finish for w in superseded)
    return max(0.0, op.start - earliest_newer_finish)


@dataclass(frozen=True)
class StalenessStats:
    """Aggregate staleness of the reads of one history."""

    num_reads: int
    stale_reads: int
    max_value_lag: int
    mean_value_lag: float
    max_time_lag: float
    lag_histogram: Tuple[Tuple[int, int], ...]

    @property
    def stale_fraction(self) -> float:
        """Fraction of reads whose certified value lag is at least 1."""
        if self.num_reads == 0:
            return 0.0
        return self.stale_reads / self.num_reads

    def implies_not_k_atomic(self, k: int) -> bool:
        """True iff some read's lag already certifies non-k-atomicity."""
        return self.max_value_lag >= k


def staleness_stats(history: History) -> StalenessStats:
    """Compute :class:`StalenessStats` for a history."""
    lags: List[int] = []
    time_lags: List[float] = []
    for r in history.reads:
        lags.append(read_value_lag(history, r))
        time_lags.append(read_time_lag(history, r))
    histogram: Dict[int, int] = {}
    for lag in lags:
        histogram[lag] = histogram.get(lag, 0) + 1
    return StalenessStats(
        num_reads=len(lags),
        stale_reads=sum(1 for lag in lags if lag >= 1),
        max_value_lag=max(lags) if lags else 0,
        mean_value_lag=(sum(lags) / len(lags)) if lags else 0.0,
        max_time_lag=max(time_lags) if time_lags else 0.0,
        lag_histogram=tuple(sorted(histogram.items())),
    )


@dataclass(frozen=True)
class HistoryProfile:
    """Structural statistics of a history (useful for benchmark reporting)."""

    num_operations: int
    num_writes: int
    num_reads: int
    max_concurrent_writes: int
    num_forward_clusters: int
    num_backward_clusters: int
    num_chunks: int
    num_dangling_clusters: int
    largest_chunk_size: int
    duration: float

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that are writes."""
        if self.num_operations == 0:
            return 0.0
        return self.num_writes / self.num_operations


def profile_history(history: History) -> HistoryProfile:
    """Compute a :class:`HistoryProfile` for a (anomaly-free) history."""
    if history.is_empty:
        return HistoryProfile(0, 0, 0, 0, 0, 0, 0, 0, 0, 0.0)
    clusters = build_clusters(history)
    chunk_set = compute_chunk_set(history, clusters)
    lo, hi = history.span()
    return HistoryProfile(
        num_operations=len(history),
        num_writes=len(history.writes),
        num_reads=len(history.reads),
        max_concurrent_writes=history.max_concurrent_writes(),
        num_forward_clusters=sum(1 for cl in clusters if cl.is_forward),
        num_backward_clusters=sum(1 for cl in clusters if cl.is_backward),
        num_chunks=chunk_set.num_chunks,
        num_dangling_clusters=chunk_set.num_dangling,
        largest_chunk_size=chunk_set.largest_chunk_size(),
        duration=hi - lo,
    )
