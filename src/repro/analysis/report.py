"""Human-readable consistency reports.

The report module renders the results of a store audit — the staleness
spectrum, per-key staleness statistics, and the store/workload configuration —
as plain text tables suitable for terminals and log files.  The example
programs and the benchmark harness use it to print the rows the paper-style
experiments produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.history import History, MultiHistory
from .metrics import StalenessStats, staleness_stats
from .spectrum import StalenessBucket, StalenessSpectrum, atomicity_spectrum

__all__ = ["format_table", "ConsistencyReport", "audit_trace"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table (no external dependencies).

    Column widths adapt to the longest cell; all values are converted with
    ``str``.  Used by the examples and the benchmark harness for the
    paper-style result tables.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


@dataclass(frozen=True)
class ConsistencyReport:
    """The result of auditing one recorded trace."""

    spectrum: StalenessSpectrum
    per_key_staleness: Tuple[Tuple[Hashable, StalenessStats], ...]
    title: str = "consistency audit"

    @property
    def num_keys(self) -> int:
        """Number of registers covered by the audit."""
        return self.spectrum.num_keys

    def worst_observed_lag(self) -> int:
        """The largest certified value lag over all reads of all registers."""
        lags = [stats.max_value_lag for _, stats in self.per_key_staleness]
        return max(lags) if lags else 0

    def render(self) -> str:
        """Render the full report as text."""
        lines: List[str] = [self.title, "=" * len(self.title), ""]
        counts = self.spectrum.counts()
        lines.append("staleness spectrum (registers per bucket):")
        for bucket in (
            StalenessBucket.ATOMIC,
            StalenessBucket.TWO_ATOMIC,
            StalenessBucket.THREE_PLUS,
            StalenessBucket.ANOMALOUS,
            StalenessBucket.EMPTY,
        ):
            if counts.get(bucket):
                lines.append(f"  {bucket.value:>10}: {counts[bucket]}")
        lines.append("")
        rows = []
        stats_by_key = dict(self.per_key_staleness)
        for verdict in self.spectrum.verdicts:
            stats = stats_by_key.get(verdict.key)
            rows.append(
                [
                    verdict.key,
                    verdict.num_operations,
                    verdict.bucket.value,
                    verdict.minimal_k if verdict.minimal_k is not None else "?",
                    f"{stats.stale_fraction:.1%}" if stats else "-",
                    stats.max_value_lag if stats else "-",
                ]
            )
        lines.append(
            format_table(
                ["key", "ops", "bucket", "minimal k", "stale reads", "max lag"], rows
            )
        )
        return "\n".join(lines)


def audit_trace(
    trace: MultiHistory,
    *,
    title: str = "consistency audit",
    resolve_exact: bool = False,
) -> ConsistencyReport:
    """Audit a trace: spectrum plus per-key staleness statistics."""
    spectrum = atomicity_spectrum(trace, resolve_exact=resolve_exact)
    per_key: List[Tuple[Hashable, StalenessStats]] = []
    for key in sorted(trace.keys(), key=repr):
        history = trace[key]
        if history.is_empty or any(
            history.dictating_write(r) is None for r in history.reads
        ):
            continue
        per_key.append((key, staleness_stats(history)))
    return ConsistencyReport(
        spectrum=spectrum, per_key_staleness=tuple(per_key), title=title
    )
