"""Human-readable consistency reports.

The report module renders the results of a store audit — the staleness
spectrum, per-key staleness statistics, and the store/workload configuration —
as plain text tables suitable for terminals and log files.  The example
programs and the benchmark harness use it to print the rows the paper-style
experiments produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.history import History, MultiHistory
from ..core.result import StreamVerdict, VerificationResult
from .metrics import StalenessStats, staleness_stats
from .spectrum import StalenessBucket, StalenessSpectrum, atomicity_spectrum

__all__ = [
    "format_table",
    "ConsistencyReport",
    "audit_trace",
    "ShardStats",
    "TraceVerificationReport",
    "WindowStats",
    "WindowReport",
    "StreamVerificationReport",
    "SessionStats",
    "WorkerStats",
    "ServiceReport",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table (no external dependencies).

    Column widths adapt to the longest cell; all values are converted with
    ``str``.  Used by the examples and the benchmark harness for the
    paper-style result tables.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


@dataclass(frozen=True)
class ConsistencyReport:
    """The result of auditing one recorded trace."""

    spectrum: StalenessSpectrum
    per_key_staleness: Tuple[Tuple[Hashable, StalenessStats], ...]
    title: str = "consistency audit"

    @property
    def num_keys(self) -> int:
        """Number of registers covered by the audit."""
        return self.spectrum.num_keys

    def worst_observed_lag(self) -> int:
        """The largest certified value lag over all reads of all registers."""
        lags = [stats.max_value_lag for _, stats in self.per_key_staleness]
        return max(lags) if lags else 0

    def render(self) -> str:
        """Render the full report as text."""
        lines: List[str] = [self.title, "=" * len(self.title), ""]
        counts = self.spectrum.counts()
        lines.append("staleness spectrum (registers per bucket):")
        for bucket in (
            StalenessBucket.ATOMIC,
            StalenessBucket.TWO_ATOMIC,
            StalenessBucket.THREE_PLUS,
            StalenessBucket.ANOMALOUS,
            StalenessBucket.EMPTY,
        ):
            if counts.get(bucket):
                lines.append(f"  {bucket.value:>10}: {counts[bucket]}")
        lines.append("")
        rows = []
        stats_by_key = dict(self.per_key_staleness)
        for verdict in self.spectrum.verdicts:
            stats = stats_by_key.get(verdict.key)
            rows.append(
                [
                    verdict.key,
                    verdict.num_operations,
                    verdict.bucket.value,
                    verdict.minimal_k if verdict.minimal_k is not None else "?",
                    f"{stats.stale_fraction:.1%}" if stats else "-",
                    stats.max_value_lag if stats else "-",
                ]
            )
        lines.append(
            format_table(
                ["key", "ops", "bucket", "minimal k", "stale reads", "max lag"], rows
            )
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ShardStats:
    """Timing and size of one shard processed by the verification engine."""

    shard_id: int
    num_registers: int
    num_ops: int
    elapsed_s: float

    @property
    def ops_per_second(self) -> float:
        """Verification throughput of the shard (ops / wall-clock second)."""
        return self.num_ops / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(frozen=True)
class TraceVerificationReport:
    """Aggregated outcome of an engine run over a multi-register trace.

    Merges the per-register :class:`~repro.core.result.VerificationResult`
    objects produced by the shards with run-level context: which executor and
    partitioner ran, per-shard timing, total wall-clock time, and — when the
    engine short-circuited on the first failure — which registers were never
    verified.

    By the locality theorem the trace is k-atomic iff *every* register is, so
    :attr:`is_k_atomic` additionally requires that no register was skipped.
    """

    k: int
    #: Per-register results in the trace's register order (skipped registers
    #: are absent; see :attr:`skipped_keys`).
    results: Mapping[Hashable, VerificationResult]
    executor: str
    partitioner: str
    jobs: int
    num_shards: int
    shard_stats: Tuple[ShardStats, ...]
    elapsed_s: float
    #: Registers left unverified because the engine short-circuited.
    skipped_keys: Tuple[Hashable, ...] = ()
    #: Tier policy the run used (``"exact"`` when tiering was off).
    tier: str = "exact"
    #: Aggregate tier hit-rates (:meth:`repro.engine.tiering.TierStats.to_dict`)
    #: — empty when tiering was off.
    tier_stats: Mapping[str, object] = field(default_factory=dict)
    #: Per-register :class:`~repro.engine.tiering.TierDecision` routes, so a
    #: skipped exact check is never silent.
    tier_decisions: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def num_registers(self) -> int:
        """Registers with a verdict (excludes skipped ones)."""
        return len(self.results)

    @property
    def total_ops(self) -> int:
        """Total operations verified across all shards."""
        return sum(s.num_ops for s in self.shard_stats)

    @property
    def failures(self) -> Dict[Hashable, VerificationResult]:
        """The registers that failed verification, in trace order."""
        return {key: r for key, r in self.results.items() if not r}

    @property
    def first_failure(self) -> Optional[Tuple[Hashable, VerificationResult]]:
        """The first failing ``(key, result)`` in trace order, if any."""
        for key, r in self.results.items():
            if not r:
                return key, r
        return None

    @property
    def is_k_atomic(self) -> bool:
        """True iff every register was verified and every verdict is YES."""
        return not self.skipped_keys and all(bool(r) for r in self.results.values())

    def verdicts(self) -> Dict[Hashable, bool]:
        """Plain boolean verdict per verified register."""
        return {key: bool(r) for key, r in self.results.items()}

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        verdict = "YES" if self.is_k_atomic else "NO"
        parts = [
            f"{self.k}-atomic: {verdict}",
            f"{self.num_registers} registers / {self.total_ops} ops",
            f"{self.num_shards} shards via {self.executor} (jobs={self.jobs}, "
            f"partitioner={self.partitioner})",
            f"{self.elapsed_s:.3f}s",
        ]
        if self.skipped_keys:
            parts.append(f"{len(self.skipped_keys)} registers skipped after first failure")
        if self.tier != "exact" and self.tier_stats:
            ts = self.tier_stats
            parts.append(
                f"tier={self.tier}: {ts.get('screened', 0)}/{ts.get('total', 0)} "
                f"screened, {ts.get('exact', 0)} exact"
            )
        return " — ".join(parts)

    def render(self) -> str:
        """Render the full report (summary, shard table, failures) as text."""
        lines: List[str] = [self.summary(), ""]
        if self.shard_stats:
            lines.append("per-shard statistics:")
            lines.append(
                format_table(
                    ["shard", "registers", "ops", "elapsed (s)", "ops/s"],
                    [
                        [
                            s.shard_id,
                            s.num_registers,
                            s.num_ops,
                            f"{s.elapsed_s:.4f}",
                            f"{s.ops_per_second:,.0f}",
                        ]
                        for s in sorted(self.shard_stats, key=lambda s: s.shard_id)
                    ],
                )
            )
        failures = self.failures
        if failures:
            lines.append("")
            lines.append("failing registers:")
            lines.append(
                format_table(
                    ["key", "algorithm", "reason"],
                    [[key, r.algorithm, r.reason] for key, r in failures.items()],
                )
            )
        if self.skipped_keys:
            lines.append("")
            skipped = ", ".join(repr(k) for k in self.skipped_keys[:8])
            more = "" if len(self.skipped_keys) <= 8 else f" (+{len(self.skipped_keys) - 8} more)"
            lines.append(f"skipped (fail-fast): {skipped}{more}")
        return "\n".join(lines)


@dataclass(frozen=True)
class WindowStats:
    """Size and timing of one stream window processed by the streaming engine."""

    index: int
    num_ops: int
    num_registers: int
    t_low: float
    t_high: float
    elapsed_s: float

    @property
    def ops_per_second(self) -> float:
        """Verification throughput of the window (ops / wall-clock second)."""
        return self.num_ops / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(frozen=True)
class WindowReport:
    """Rolling verdicts produced when one stream window closed.

    ``verdicts`` maps each register *touched by the window* to its current
    :class:`~repro.core.result.StreamVerdict` — provisional YES or final NO.
    """

    stats: WindowStats
    verdicts: Mapping[Hashable, StreamVerdict]
    #: Per-register check mode this window under a tier policy: ``"check"``
    #: (authoritative) or ``"peek"`` (O(1) screen).  Empty when tiering off.
    tiers: Mapping[Hashable, str] = field(default_factory=dict)
    #: Per-register escalation triggers (why ``"check"`` ran), so a bypassed
    #: exact check is never silent.  Empty when tiering off.
    escalations: Mapping[Hashable, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def num_escalated(self) -> int:
        """Registers forced to an authoritative check by a trigger."""
        return sum(1 for trigs in self.escalations.values() if trigs)

    @property
    def has_alarm(self) -> bool:
        """True iff some register's verdict turned (finally) negative."""
        return any(v.final and not v for v in self.verdicts.values())

    def alarms(self) -> Dict[Hashable, StreamVerdict]:
        """The registers whose verdict is a final NO, in report order."""
        return {key: v for key, v in self.verdicts.items() if v.final and not v}

    def render_lines(self) -> List[str]:
        """Terminal-friendly one-line-per-register rendering of the window."""
        s = self.stats
        header = (
            f"[window {s.index:>3}] ops={s.num_ops} registers={s.num_registers} "
            f"t=[{s.t_low:g}, {s.t_high:g}]"
        )
        lines = [header]
        for key, verdict in self.verdicts.items():
            mark = "NO " if not verdict else "yes"
            strength = "final" if verdict.final else "provisional"
            line = f"  {key!r}: {mark} ({strength})"
            if self.tiers.get(key):
                line += f" [{self.tiers[key]}"
                if self.escalations.get(key):
                    line += ": " + ", ".join(self.escalations[key])
                line += "]"
            if not verdict and verdict.result.reason:
                line += f" — {verdict.result.reason}"
            lines.append(line)
        return lines


@dataclass(frozen=True)
class StreamVerificationReport:
    """Aggregated outcome of a streaming-engine run over an operation stream.

    The timeline preserves every mid-stream :class:`WindowReport`; ``results``
    holds the final per-register verdicts after end-of-stream (in rolling mode
    these equal the batch algorithms' verdicts exactly; in windowed mode YES
    verdicts are per-window approximations and say so in their ``reason``).
    """

    k: int
    #: ``"rolling"`` (persistent incremental checkers) or ``"windowed"``
    #: (independent per-window batch verification).
    mode: str
    #: Human-readable window policy, e.g. ``count(64, overlap=8)``.
    window: str
    results: Mapping[Hashable, VerificationResult]
    timeline: Tuple[WindowReport, ...]
    executor: str
    jobs: int
    elapsed_s: float
    #: Tier policy the run used (``"exact"`` when tiering was off).
    tier: str = "exact"

    # ------------------------------------------------------------------
    @property
    def num_registers(self) -> int:
        """Registers that received at least one operation."""
        return len(self.results)

    @property
    def num_windows(self) -> int:
        """Windows the stream was cut into."""
        return len(self.timeline)

    @property
    def total_ops(self) -> int:
        """Total operations pumped through the engine."""
        return sum(w.stats.num_ops for w in self.timeline)

    @property
    def failures(self) -> Dict[Hashable, VerificationResult]:
        """The registers whose final verdict is NO."""
        return {key: r for key, r in self.results.items() if not r}

    @property
    def is_k_atomic(self) -> bool:
        """True iff every register's final verdict is YES."""
        return all(bool(r) for r in self.results.values())

    @property
    def first_alarm(self) -> Optional[Tuple[int, Hashable, StreamVerdict]]:
        """The earliest mid-stream final NO as ``(window index, key, verdict)``."""
        for window in self.timeline:
            for key, verdict in window.verdicts.items():
                if verdict.final and not verdict:
                    return (window.stats.index, key, verdict)
        return None

    # -- tiering accounting (no silent caps) ---------------------------
    @property
    def windows_bypassed_exact(self) -> int:
        """Windows whose every touched register skipped the authoritative check.

        Under a tier policy the O(1) ``peek`` screen may stand in for the
        per-window authoritative check; this counter keeps those bypasses
        visible (the end-of-stream verdicts are still exact — ``finish()``
        always runs the authoritative checker).  Always 0 when tiering off.
        """
        return sum(
            1
            for w in self.timeline
            if w.tiers and all(mode != "check" for mode in w.tiers.values())
        )

    @property
    def register_windows_bypassed(self) -> int:
        """(register, window) units that peeked instead of checking."""
        return sum(
            sum(1 for mode in w.tiers.values() if mode != "check")
            for w in self.timeline
        )

    @property
    def escalated_checks(self) -> int:
        """(register, window) units escalated to an authoritative check by a
        trigger (checker alarm, anomaly, value lag, overlap, periodic)."""
        return sum(w.num_escalated for w in self.timeline)

    # ------------------------------------------------------------------
    def to_trace_report(self) -> TraceVerificationReport:
        """Merge the timeline into the batch :class:`TraceVerificationReport`.

        Windows take the place of shards (one :class:`ShardStats` entry per
        window, in stream order) and the window policy takes the partitioner
        slot, so every consumer of the batch report — renderers, benchmark
        tables, comparison scripts — works unchanged on streaming output.
        """
        return TraceVerificationReport(
            k=self.k,
            results=dict(self.results),
            executor=f"streaming-{self.mode}",
            partitioner=self.window,
            jobs=self.jobs,
            num_shards=len(self.timeline),
            shard_stats=tuple(
                ShardStats(
                    shard_id=w.stats.index,
                    num_registers=w.stats.num_registers,
                    num_ops=w.stats.num_ops,
                    elapsed_s=w.stats.elapsed_s,
                )
                for w in self.timeline
            ),
            elapsed_s=self.elapsed_s,
            tier=self.tier,
        )

    def summary(self) -> str:
        """One-line human-readable summary of the streaming run."""
        verdict = "YES" if self.is_k_atomic else "NO"
        parts = [
            f"{self.k}-atomic: {verdict}",
            f"{self.num_registers} registers / {self.total_ops} ops",
            f"{self.num_windows} windows of {self.window} via {self.mode} "
            f"({self.executor}, jobs={self.jobs})",
            f"{self.elapsed_s:.3f}s",
        ]
        if self.tier != "exact":
            parts.append(
                f"tier={self.tier}: {self.windows_bypassed_exact}/"
                f"{self.num_windows} windows bypassed exact, "
                f"{self.escalated_checks} escalations"
            )
        alarm = self.first_alarm
        if alarm is not None:
            index, key, verdict_obj = alarm
            parts.append(
                f"first alarm in window {index} on register {key!r} "
                f"after {verdict_obj.ops_seen} ops"
            )
        return " — ".join(parts)

    def render(self) -> str:
        """Render the summary, per-window table, and failing registers."""
        lines: List[str] = [self.summary(), ""]
        if self.timeline:
            lines.append("window timeline:")
            lines.append(
                format_table(
                    ["window", "ops", "registers", "t range", "alarms", "elapsed (s)"],
                    [
                        [
                            w.stats.index,
                            w.stats.num_ops,
                            w.stats.num_registers,
                            f"[{w.stats.t_low:g}, {w.stats.t_high:g}]",
                            len(w.alarms()),
                            f"{w.stats.elapsed_s:.4f}",
                        ]
                        for w in self.timeline
                    ],
                )
            )
        failures = self.failures
        if failures:
            lines.append("")
            lines.append("failing registers:")
            lines.append(
                format_table(
                    ["key", "algorithm", "reason"],
                    [[key, r.algorithm, r.reason] for key, r in failures.items()],
                )
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class SessionStats:
    """Per-session accounting of one audit-service stream.

    One row of the service-level report: how much one client session fed,
    how many windows closed, whether any register raised a final NO, and the
    checkpoint/resume history of the session.
    """

    session_id: str
    k: int
    window: str
    num_ops: int
    num_windows: int
    num_registers: int
    num_alarms: int
    checkpoints: int
    resumed: bool
    finished: bool
    elapsed_s: float
    #: False once the session's connection has gone away without an ``end``
    #: frame — it is resumable (detached), but nothing is streaming.
    connected: bool = True
    #: Tier policy of the session (``"exact"`` when tiering off).
    tier: str = "exact"
    #: (register, window) units escalated to an authoritative check.
    escalations: int = 0
    #: Windows whose every touched register skipped the authoritative check.
    windows_bypassed: int = 0

    @property
    def ops_per_second(self) -> float:
        """Feed throughput of the session (ops / wall-clock second)."""
        return self.num_ops / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def state(self) -> str:
        """``done`` / ``active`` / ``detached`` (resumable but disconnected)."""
        if self.finished:
            return "done"
        return "active" if self.connected else "detached"


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker accounting of the audit service's process pool.

    One row per pool worker: how many checker shards it currently homes, the
    feed traffic it has absorbed, and its failover history (``restarts``
    counts respawns after a worker-process death; ``restored_shards`` counts
    shards rehydrated onto this worker from snapshots — failover and
    ring-rebalance migrations alike).
    """

    worker_id: int
    pid: Optional[int]
    alive: bool
    shards: int
    batches: int
    ops: int
    snapshots: int
    restarts: int
    restored_shards: int


@dataclass(frozen=True)
class ServiceReport:
    """Service-level view of an audit-server run.

    ``sessions`` holds one :class:`SessionStats` per session the server has
    seen — completed and still-active alike — in arrival order.  When the
    server runs a worker pool, ``workers`` carries one :class:`WorkerStats`
    row per checker process (empty for single-process servers).
    """

    sessions: Tuple[SessionStats, ...]
    uptime_s: float
    workers: Tuple[WorkerStats, ...] = ()

    @property
    def num_sessions(self) -> int:
        """Sessions the server accepted over its lifetime."""
        return len(self.sessions)

    @property
    def active_sessions(self) -> int:
        """Sessions still streaming (connected, no final report yet)."""
        return sum(1 for s in self.sessions if s.state == "active")

    @property
    def detached_sessions(self) -> int:
        """Disconnected-without-``end`` sessions (resumable, not streaming)."""
        return sum(1 for s in self.sessions if s.state == "detached")

    @property
    def total_ops(self) -> int:
        """Operations fed across all sessions."""
        return sum(s.num_ops for s in self.sessions)

    @property
    def total_alarms(self) -> int:
        """Final NO verdicts raised across all sessions."""
        return sum(s.num_alarms for s in self.sessions)

    def summary(self) -> str:
        """One-line human-readable summary of the service run."""
        detached = (
            f", {self.detached_sessions} detached" if self.detached_sessions else ""
        )
        pool = f" / {len(self.workers)} workers" if self.workers else ""
        return (
            f"audit service — {self.num_sessions} sessions "
            f"({self.active_sessions} active{detached}) / {self.total_ops} ops / "
            f"{self.total_alarms} alarms{pool} — up {self.uptime_s:.1f}s"
        )

    def render(self) -> str:
        """Render the summary plus a one-row-per-session table."""
        lines = [self.summary()]
        if self.sessions:
            lines.append("")
            lines.append(
                format_table(
                    [
                        "session", "k", "window", "ops", "windows", "registers",
                        "alarms", "ckpts", "resumed", "state", "ops/s",
                    ],
                    [
                        [
                            s.session_id,
                            s.k,
                            s.window,
                            s.num_ops,
                            s.num_windows,
                            s.num_registers,
                            s.num_alarms,
                            s.checkpoints,
                            "yes" if s.resumed else "no",
                            s.state,
                            f"{s.ops_per_second:,.0f}",
                        ]
                        for s in self.sessions
                    ],
                )
            )
        tiered = [s for s in self.sessions if s.tier != "exact"]
        if tiered:
            lines.append("")
            lines.append("tiering (escalations are never silent):")
            lines.append(
                format_table(
                    ["session", "tier", "escalations", "windows bypassed"],
                    [
                        [s.session_id, s.tier, s.escalations, s.windows_bypassed]
                        for s in tiered
                    ],
                )
            )
        if self.workers:
            lines.append("")
            lines.append("worker pool:")
            lines.append(
                format_table(
                    [
                        "worker", "pid", "state", "shards", "batches", "ops",
                        "snapshots", "restarts", "restored",
                    ],
                    [
                        [
                            w.worker_id,
                            w.pid if w.pid is not None else "-",
                            "up" if w.alive else "down",
                            w.shards,
                            w.batches,
                            w.ops,
                            w.snapshots,
                            w.restarts,
                            w.restored_shards,
                        ]
                        for w in self.workers
                    ],
                )
            )
        return "\n".join(lines)


def audit_trace(
    trace: MultiHistory,
    *,
    title: str = "consistency audit",
    resolve_exact: bool = False,
) -> ConsistencyReport:
    """Audit a trace: spectrum plus per-key staleness statistics."""
    spectrum = atomicity_spectrum(trace, resolve_exact=resolve_exact)
    per_key: List[Tuple[Hashable, StalenessStats]] = []
    for key in sorted(trace.keys(), key=repr):
        history = trace[key]
        if history.is_empty or any(
            history.dictating_write(r) is None for r in history.reads
        ):
            continue
        per_key.append((key, staleness_stats(history)))
    return ConsistencyReport(
        spectrum=spectrum, per_key_staleness=tuple(per_key), title=title
    )
