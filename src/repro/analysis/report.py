"""Human-readable consistency reports.

The report module renders the results of a store audit — the staleness
spectrum, per-key staleness statistics, and the store/workload configuration —
as plain text tables suitable for terminals and log files.  The example
programs and the benchmark harness use it to print the rows the paper-style
experiments produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.history import History, MultiHistory
from ..core.result import VerificationResult
from .metrics import StalenessStats, staleness_stats
from .spectrum import StalenessBucket, StalenessSpectrum, atomicity_spectrum

__all__ = [
    "format_table",
    "ConsistencyReport",
    "audit_trace",
    "ShardStats",
    "TraceVerificationReport",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table (no external dependencies).

    Column widths adapt to the longest cell; all values are converted with
    ``str``.  Used by the examples and the benchmark harness for the
    paper-style result tables.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


@dataclass(frozen=True)
class ConsistencyReport:
    """The result of auditing one recorded trace."""

    spectrum: StalenessSpectrum
    per_key_staleness: Tuple[Tuple[Hashable, StalenessStats], ...]
    title: str = "consistency audit"

    @property
    def num_keys(self) -> int:
        """Number of registers covered by the audit."""
        return self.spectrum.num_keys

    def worst_observed_lag(self) -> int:
        """The largest certified value lag over all reads of all registers."""
        lags = [stats.max_value_lag for _, stats in self.per_key_staleness]
        return max(lags) if lags else 0

    def render(self) -> str:
        """Render the full report as text."""
        lines: List[str] = [self.title, "=" * len(self.title), ""]
        counts = self.spectrum.counts()
        lines.append("staleness spectrum (registers per bucket):")
        for bucket in (
            StalenessBucket.ATOMIC,
            StalenessBucket.TWO_ATOMIC,
            StalenessBucket.THREE_PLUS,
            StalenessBucket.ANOMALOUS,
            StalenessBucket.EMPTY,
        ):
            if counts.get(bucket):
                lines.append(f"  {bucket.value:>10}: {counts[bucket]}")
        lines.append("")
        rows = []
        stats_by_key = dict(self.per_key_staleness)
        for verdict in self.spectrum.verdicts:
            stats = stats_by_key.get(verdict.key)
            rows.append(
                [
                    verdict.key,
                    verdict.num_operations,
                    verdict.bucket.value,
                    verdict.minimal_k if verdict.minimal_k is not None else "?",
                    f"{stats.stale_fraction:.1%}" if stats else "-",
                    stats.max_value_lag if stats else "-",
                ]
            )
        lines.append(
            format_table(
                ["key", "ops", "bucket", "minimal k", "stale reads", "max lag"], rows
            )
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ShardStats:
    """Timing and size of one shard processed by the verification engine."""

    shard_id: int
    num_registers: int
    num_ops: int
    elapsed_s: float

    @property
    def ops_per_second(self) -> float:
        """Verification throughput of the shard (ops / wall-clock second)."""
        return self.num_ops / self.elapsed_s if self.elapsed_s > 0 else 0.0


@dataclass(frozen=True)
class TraceVerificationReport:
    """Aggregated outcome of an engine run over a multi-register trace.

    Merges the per-register :class:`~repro.core.result.VerificationResult`
    objects produced by the shards with run-level context: which executor and
    partitioner ran, per-shard timing, total wall-clock time, and — when the
    engine short-circuited on the first failure — which registers were never
    verified.

    By the locality theorem the trace is k-atomic iff *every* register is, so
    :attr:`is_k_atomic` additionally requires that no register was skipped.
    """

    k: int
    #: Per-register results in the trace's register order (skipped registers
    #: are absent; see :attr:`skipped_keys`).
    results: Mapping[Hashable, VerificationResult]
    executor: str
    partitioner: str
    jobs: int
    num_shards: int
    shard_stats: Tuple[ShardStats, ...]
    elapsed_s: float
    #: Registers left unverified because the engine short-circuited.
    skipped_keys: Tuple[Hashable, ...] = ()

    # ------------------------------------------------------------------
    @property
    def num_registers(self) -> int:
        """Registers with a verdict (excludes skipped ones)."""
        return len(self.results)

    @property
    def total_ops(self) -> int:
        """Total operations verified across all shards."""
        return sum(s.num_ops for s in self.shard_stats)

    @property
    def failures(self) -> Dict[Hashable, VerificationResult]:
        """The registers that failed verification, in trace order."""
        return {key: r for key, r in self.results.items() if not r}

    @property
    def first_failure(self) -> Optional[Tuple[Hashable, VerificationResult]]:
        """The first failing ``(key, result)`` in trace order, if any."""
        for key, r in self.results.items():
            if not r:
                return key, r
        return None

    @property
    def is_k_atomic(self) -> bool:
        """True iff every register was verified and every verdict is YES."""
        return not self.skipped_keys and all(bool(r) for r in self.results.values())

    def verdicts(self) -> Dict[Hashable, bool]:
        """Plain boolean verdict per verified register."""
        return {key: bool(r) for key, r in self.results.items()}

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        verdict = "YES" if self.is_k_atomic else "NO"
        parts = [
            f"{self.k}-atomic: {verdict}",
            f"{self.num_registers} registers / {self.total_ops} ops",
            f"{self.num_shards} shards via {self.executor} (jobs={self.jobs}, "
            f"partitioner={self.partitioner})",
            f"{self.elapsed_s:.3f}s",
        ]
        if self.skipped_keys:
            parts.append(f"{len(self.skipped_keys)} registers skipped after first failure")
        return " — ".join(parts)

    def render(self) -> str:
        """Render the full report (summary, shard table, failures) as text."""
        lines: List[str] = [self.summary(), ""]
        if self.shard_stats:
            lines.append("per-shard statistics:")
            lines.append(
                format_table(
                    ["shard", "registers", "ops", "elapsed (s)", "ops/s"],
                    [
                        [
                            s.shard_id,
                            s.num_registers,
                            s.num_ops,
                            f"{s.elapsed_s:.4f}",
                            f"{s.ops_per_second:,.0f}",
                        ]
                        for s in sorted(self.shard_stats, key=lambda s: s.shard_id)
                    ],
                )
            )
        failures = self.failures
        if failures:
            lines.append("")
            lines.append("failing registers:")
            lines.append(
                format_table(
                    ["key", "algorithm", "reason"],
                    [[key, r.algorithm, r.reason] for key, r in failures.items()],
                )
            )
        if self.skipped_keys:
            lines.append("")
            skipped = ", ".join(repr(k) for k in self.skipped_keys[:8])
            more = "" if len(self.skipped_keys) <= 8 else f" (+{len(self.skipped_keys) - 8} more)"
            lines.append(f"skipped (fail-fast): {skipped}{more}")
        return "\n".join(lines)


def audit_trace(
    trace: MultiHistory,
    *,
    title: str = "consistency audit",
    resolve_exact: bool = False,
) -> ConsistencyReport:
    """Audit a trace: spectrum plus per-key staleness statistics."""
    spectrum = atomicity_spectrum(trace, resolve_exact=resolve_exact)
    per_key: List[Tuple[Hashable, StalenessStats]] = []
    for key in sorted(trace.keys(), key=repr):
        history = trace[key]
        if history.is_empty or any(
            history.dictating_write(r) is None for r in history.reads
        ):
            continue
        per_key.append((key, staleness_stats(history)))
    return ConsistencyReport(
        spectrum=spectrum, per_key_staleness=tuple(per_key), title=title
    )
