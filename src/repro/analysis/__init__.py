"""Consistency analysis: staleness metrics, spectra, and reports."""

from .metrics import (
    HistoryProfile,
    StalenessStats,
    profile_history,
    read_time_lag,
    read_value_lag,
    staleness_stats,
)
from .report import (
    ConsistencyReport,
    ShardStats,
    StreamVerificationReport,
    TraceVerificationReport,
    WindowReport,
    WindowStats,
    audit_trace,
    format_table,
)
from .spectrum import (
    KeyVerdict,
    OnlineSpectrum,
    StalenessBucket,
    StalenessSpectrum,
    atomicity_spectrum,
    staleness_bucket,
)

__all__ = [
    "ConsistencyReport",
    "HistoryProfile",
    "KeyVerdict",
    "OnlineSpectrum",
    "ShardStats",
    "StalenessBucket",
    "StalenessSpectrum",
    "StalenessStats",
    "StreamVerificationReport",
    "TraceVerificationReport",
    "WindowReport",
    "WindowStats",
    "atomicity_spectrum",
    "audit_trace",
    "format_table",
    "profile_history",
    "read_time_lag",
    "read_value_lag",
    "staleness_bucket",
    "staleness_stats",
]
