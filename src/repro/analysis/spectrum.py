"""Staleness spectrum: classify each register of a trace by its minimal k.

The introduction of the paper argues that operators want to know not just
*whether* a store is atomic but *how far* from atomic it is, so that
consistency "tuning knobs" (quorum sizes, replication factor) can be relaxed
or tightened.  The spectrum analysis answers exactly that question for a
recorded trace: for every register it reports the smallest ``k`` for which
the per-register history is k-atomic, bucketed as ``1``, ``2``, or ``3+``
(because no polynomial algorithm is known beyond ``k = 2``, larger histories
are not sent to the exponential oracle unless explicitly requested).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.api import DEFAULT_MAX_EXACT_OPS, verify
from ..core.history import History, MultiHistory
from ..core.preprocess import find_anomalies, normalize
from ..core.result import StreamVerdict

__all__ = [
    "StalenessBucket",
    "staleness_bucket",
    "KeyVerdict",
    "StalenessSpectrum",
    "atomicity_spectrum",
    "OnlineSpectrum",
]


class StalenessBucket(enum.Enum):
    """Coarse classification of a register's minimal staleness bound."""

    ATOMIC = "k=1"
    TWO_ATOMIC = "k=2"
    THREE_PLUS = "k>=3"
    ANOMALOUS = "anomalous"
    EMPTY = "empty"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def staleness_bucket(
    history: History,
    *,
    resolve_exact: bool = False,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
    columnar: Optional[bool] = None,
) -> Tuple[StalenessBucket, Optional[int]]:
    """Classify one register history.

    Returns ``(bucket, minimal_k)`` where ``minimal_k`` is known exactly for
    buckets ``ATOMIC`` and ``TWO_ATOMIC``; for ``THREE_PLUS`` it is only
    resolved when ``resolve_exact=True`` and the history is small enough for
    the exponential oracle, otherwise ``None``.

    The per-k sweep shares every derived structure: normalisation, the
    anomaly scan, the cluster table and the columnar encoding are computed
    once on the history and reused by the k=1 and k=2 verifiers.
    """
    if history.is_empty:
        return (StalenessBucket.EMPTY, None)
    if find_anomalies(history):
        return (StalenessBucket.ANOMALOUS, None)
    normalized = normalize(history)
    if verify(normalized, 1, preprocess=False, columnar=columnar):
        return (StalenessBucket.ATOMIC, 1)
    if verify(normalized, 2, preprocess=False, columnar=columnar):
        return (StalenessBucket.TWO_ATOMIC, 2)
    if resolve_exact and len(normalized) <= max_exact_ops:
        k = 3
        while not verify(normalized, k, algorithm="exact", preprocess=False):
            k += 1
        return (StalenessBucket.THREE_PLUS, k)
    return (StalenessBucket.THREE_PLUS, None)


@dataclass(frozen=True)
class KeyVerdict:
    """Spectrum entry for one register."""

    key: Hashable
    bucket: StalenessBucket
    minimal_k: Optional[int]
    num_operations: int


@dataclass(frozen=True)
class StalenessSpectrum:
    """The staleness spectrum of a whole trace."""

    verdicts: Tuple[KeyVerdict, ...]

    @property
    def num_keys(self) -> int:
        """Number of registers analysed."""
        return len(self.verdicts)

    def counts(self) -> Dict[StalenessBucket, int]:
        """How many registers fall into each bucket."""
        result: Dict[StalenessBucket, int] = {}
        for v in self.verdicts:
            result[v.bucket] = result.get(v.bucket, 0) + 1
        return result

    def fraction(self, bucket: StalenessBucket) -> float:
        """The fraction of registers in ``bucket``."""
        if not self.verdicts:
            return 0.0
        return self.counts().get(bucket, 0) / len(self.verdicts)

    @property
    def fraction_atomic(self) -> float:
        """Fraction of registers that are linearizable (k = 1)."""
        return self.fraction(StalenessBucket.ATOMIC)

    @property
    def fraction_within_2(self) -> float:
        """Fraction of registers that are at worst 2-atomic."""
        return self.fraction(StalenessBucket.ATOMIC) + self.fraction(
            StalenessBucket.TWO_ATOMIC
        )

    def worst_bucket(self) -> StalenessBucket:
        """The worst bucket observed across all registers."""
        severity = {
            StalenessBucket.EMPTY: 0,
            StalenessBucket.ATOMIC: 1,
            StalenessBucket.TWO_ATOMIC: 2,
            StalenessBucket.THREE_PLUS: 3,
            StalenessBucket.ANOMALOUS: 4,
        }
        if not self.verdicts:
            return StalenessBucket.EMPTY
        return max((v.bucket for v in self.verdicts), key=lambda b: severity[b])

    def is_k_atomic(self, k: int) -> Optional[bool]:
        """Whether the whole trace is k-atomic, if determinable from buckets.

        Returns ``True``/``False`` when the bucket information suffices
        (k-atomicity is local, Section II-B) and ``None`` when some register
        landed in the unresolved ``k >= 3`` bucket and ``k >= 3`` was asked.
        """
        worst = self.worst_bucket()
        if worst is StalenessBucket.ANOMALOUS:
            return False
        if worst is StalenessBucket.EMPTY or worst is StalenessBucket.ATOMIC:
            return True
        if worst is StalenessBucket.TWO_ATOMIC:
            return k >= 2
        # THREE_PLUS
        if k <= 2:
            return False
        resolved = [v.minimal_k for v in self.verdicts if v.bucket is StalenessBucket.THREE_PLUS]
        if all(m is not None for m in resolved):
            return all(m <= k for m in resolved)
        return None


class OnlineSpectrum:
    """A staleness spectrum maintained incrementally, one window at a time.

    The batch :func:`atomicity_spectrum` classifies a *finished* trace; the
    online spectrum answers the same "how far from atomic is each register?"
    question while the trace is still being recorded.  A live audit runs a
    bank of incremental checkers per register (typically ``k = 1`` and
    ``k = 2``; see :class:`repro.simulation.auditor.LiveAuditor`) and calls
    :meth:`observe` with the rolling verdicts at each window close; the
    spectrum folds them into the per-register bucket:

    * 1-atomic YES → ``ATOMIC``;
    * 1-atomic NO, 2-atomic YES → ``TWO_ATOMIC``;
    * both NO → ``THREE_PLUS`` (or ``ANOMALOUS`` when the verdict came from
      the Section II-C preprocessing rather than an algorithm).

    Because NO stream verdicts are final and YES verdicts are provisional,
    buckets only ever move toward more staleness as the stream continues —
    the online spectrum at any instant is an optimistic-but-sound view that
    converges to the batch spectrum at end-of-stream.
    """

    def __init__(self) -> None:
        self._buckets: Dict[Hashable, StalenessBucket] = {}
        self._minimal: Dict[Hashable, Optional[int]] = {}
        self._num_ops: Dict[Hashable, int] = {}
        self._key_order: List[Hashable] = []
        self._updates = 0

    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        """Registers observed so far."""
        return len(self._key_order)

    @property
    def updates(self) -> int:
        """How many :meth:`observe` calls the spectrum has folded in."""
        return self._updates

    def observe(
        self,
        key: Hashable,
        *,
        one_atomic: Optional[StreamVerdict] = None,
        two_atomic: Optional[StreamVerdict] = None,
        num_ops: int = 0,
    ) -> StalenessBucket:
        """Fold one register's rolling verdicts into the spectrum.

        Either verdict may be ``None`` when the corresponding checker was not
        run; the bucket is then derived from the available one (a lone
        1-atomic NO yields ``TWO_ATOMIC`` as the optimistic-but-sound bound).
        Returns the register's updated bucket.
        """
        self._updates += 1
        if key not in self._buckets:
            self._key_order.append(key)
        if num_ops:
            self._num_ops[key] = num_ops
        anomalous = any(
            v is not None and not v and v.result.algorithm == "preprocess"
            for v in (one_atomic, two_atomic)
        )
        if anomalous:
            bucket, minimal = StalenessBucket.ANOMALOUS, None
        elif one_atomic is not None and one_atomic:
            bucket, minimal = StalenessBucket.ATOMIC, 1
        elif two_atomic is not None and two_atomic:
            bucket, minimal = StalenessBucket.TWO_ATOMIC, 2
        elif two_atomic is not None and not two_atomic:
            bucket, minimal = StalenessBucket.THREE_PLUS, None
        elif one_atomic is not None and not one_atomic:
            bucket, minimal = StalenessBucket.TWO_ATOMIC, None
        else:
            bucket, minimal = StalenessBucket.EMPTY, None
        self._buckets[key] = bucket
        self._minimal[key] = minimal
        return bucket

    def bucket_of(self, key: Hashable) -> Optional[StalenessBucket]:
        """The register's current bucket, or ``None`` if never observed."""
        return self._buckets.get(key)

    def snapshot(self) -> StalenessSpectrum:
        """Freeze the current state into a :class:`StalenessSpectrum`."""
        verdicts = tuple(
            KeyVerdict(
                key=key,
                bucket=self._buckets[key],
                minimal_k=self._minimal[key],
                num_operations=self._num_ops.get(key, 0),
            )
            for key in sorted(self._key_order, key=repr)
        )
        return StalenessSpectrum(verdicts=verdicts)


def atomicity_spectrum(
    trace: MultiHistory,
    *,
    resolve_exact: bool = False,
    max_exact_ops: int = DEFAULT_MAX_EXACT_OPS,
    columnar: Optional[bool] = None,
) -> StalenessSpectrum:
    """Compute the staleness spectrum of a multi-register trace."""
    verdicts: List[KeyVerdict] = []
    for key in sorted(trace.keys(), key=repr):
        history = trace[key]
        bucket, minimal = staleness_bucket(
            history,
            resolve_exact=resolve_exact,
            max_exact_ops=max_exact_ops,
            columnar=columnar,
        )
        verdicts.append(
            KeyVerdict(
                key=key,
                bucket=bucket,
                minimal_k=minimal,
                num_operations=len(history),
            )
        )
    return StalenessSpectrum(verdicts=tuple(verdicts))
