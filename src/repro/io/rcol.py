"""``.rcol`` — the chunked, memory-mapped out-of-core columnar trace format.

The row formats (JSONL, CSV, the foreign adapters) parse every record through
Python, so a multi-million-operation trace costs minutes of decode time and
gigabytes of operation objects before verification even starts.  ``.rcol``
stores a trace the way the verification kernels consume it — as raw little-
endian column segments per register — so ingestion is ``np.memmap`` plus a
footer parse: no per-operation Python, no materialisation, and the OS pages
in only the columns the kernels actually touch.

File layout::

    +--------------------------------------------------------------+
    | magic "RCOLTRC1" (8 bytes)                                   |
    | column segments (raw little-endian arrays, 8-byte aligned)   |
    | footer: UTF-8 JSON (registers -> chunks -> column offsets)   |
    | footer length (u64 LE)  |  end magic "RCOLEND1" (8 bytes)    |
    +--------------------------------------------------------------+

Per register the footer records ``n``, the (JSON-scalar) key, a list of
*chunks* — each with row count and ``column name -> [offset, nbytes]``
segment table — and a *value table*: a blob of concatenated JSON-encoded
values plus a ``u64`` offset index, decoded lazily one value at a time
(:class:`LazyValueTable`), so a register's value strings are never
materialised wholesale.  Kernel columns are ``start``/``finish`` (``f8``),
``is_write`` (``u1``) and ``value_id`` (``i4``); ``client_id`` (``i4``) and
``weights`` (``i8``) are stored only when some operation has a client or a
non-default weight.  Operation ids are not stored: fresh ids are minted at
load time (exactly like the row formats).

Readers/writers:

* :class:`RcolFile` — lazy per-register ingestion: ``load_columnar(key)``
  memory-maps one register into a
  :class:`~repro.core.columnar.ColumnarHistory` whose derived links are
  built with vectorized array ops (:func:`repro.core.vector.columnar_from_numpy`);
* :class:`RcolWriter` — streaming chunk-at-a-time writer (the benchmark
  harness emits multi-million-operation traces through it with bounded
  memory);
* :func:`iter_rcol` / :func:`dump_rcol` — the registry-facing reader/writer
  pair, interchangeable with every other registered format.

Requires numpy; importing this module without it raises on first use, and
the format registers itself with an explanatory description either way.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from ..core.builder import TraceBuilder
from ..core.errors import MalformedOperationError, TraceFormatError
from ..state.base import fsync_directory
from ..core.history import History, MultiHistory
from ..core.operation import Operation, OpType, trusted_operation
from ..core import operation as _operation
from ..core import vector

__all__ = [
    "MAGIC",
    "END_MAGIC",
    "RcolFile",
    "RcolWriter",
    "LazyValueTable",
    "iter_rcol",
    "dump_rcol",
]

MAGIC = b"RCOLTRC1"
END_MAGIC = b"RCOLEND1"
_VERSION = 1

#: Column name -> little-endian dtype string.
COLUMN_DTYPES = {
    "start": "<f8",
    "finish": "<f8",
    "is_write": "|u1",
    "value_id": "<i4",
    "client_id": "<i4",
    "weights": "<i8",
}

_KEY_SCALARS = (str, int, float, bool, type(None))


def _require_numpy() -> None:
    if np is None:
        raise TraceFormatError(
            "the 'rcol' trace format requires numpy, which is not installed"
        )


def _fresh_op_ids(n: int):
    """Reserve ``n`` globally-unique, consecutive operation ids.

    Uses the same counter as the operation constructors, advanced in one jump
    (via :func:`repro.core.operation.ensure_op_ids_above`) instead of ``n``
    ``next()`` calls, so minting ids for a multi-million-operation register
    is an array fill.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64)
    base = next(_operation._OP_COUNTER)
    _operation.ensure_op_ids_above(base + n)
    return np.arange(base, base + n, dtype=np.int64)


class LazyValueTable(Sequence):
    """A register's value table, decoded from the JSON blob one item at a time.

    Behaves as a read-only sequence: ``len()`` and integer indexing.  Only
    the values a caller actually touches (duplicate-write errors, NO-reason
    decoding, witness materialisation) are ever JSON-decoded.
    """

    __slots__ = ("_blob", "_offsets")

    def __init__(self, blob, offsets):
        self._blob = blob
        self._offsets = offsets

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        lo, hi = int(self._offsets[i]), int(self._offsets[i + 1])
        return json.loads(bytes(self._blob[lo:hi]))

    def materialise(self) -> List[Hashable]:
        """Decode the whole table (used only by explicit conversions)."""
        return [self[i] for i in range(len(self))]


# ======================================================================
# Writer
# ======================================================================
class RcolWriter:
    """Streaming ``.rcol`` writer: registers are written one at a time, each
    as one or more column chunks.

    Usage::

        with RcolWriter(path) as w:
            w.begin_register("x")
            w.add_values(values)            # or add_values_raw(blob, offsets)
            w.append_chunk(start, finish, is_write, value_id)
            ...                             # more chunks, bounded memory
            w.end_register()

    ``value_id`` entries index the register's value table; rows must arrive
    in canonical ``(start, finish)`` order for zero-cost loading (unsorted
    registers are detected and re-sorted at read time).  The JSON value blob
    of the *current* register is buffered until :meth:`end_register`; column
    chunks stream straight to disk.
    """

    def __init__(self, path: Union[str, Path]):
        _require_numpy()
        self._path = Path(path)
        self._fh = open(path, "wb")
        self._fh.write(MAGIC)
        self._pos = len(MAGIC)
        self._registers: List[Dict] = []
        self._current: Optional[Dict] = None
        self._value_parts: List[bytes] = []
        self._value_lengths: List[np.ndarray] = []
        self._value_count = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "RcolWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # pragma: no cover - error path
            self._fh.close()

    # ------------------------------------------------------------------
    def _write_segment(self, data: bytes) -> Tuple[int, int]:
        """Append one 8-aligned segment; returns ``(offset, nbytes)``."""
        pad = (-self._pos) % 8
        if pad:
            self._fh.write(b"\x00" * pad)
            self._pos += pad
        offset = self._pos
        self._fh.write(data)
        self._pos += len(data)
        return offset, len(data)

    # ------------------------------------------------------------------
    def begin_register(self, key: Hashable, *, has_key: Optional[bool] = None) -> None:
        """Start a new register.  ``key`` must be a JSON scalar."""
        if self._current is not None:
            raise TraceFormatError("begin_register() before end_register()")
        if not isinstance(key, _KEY_SCALARS):
            raise TraceFormatError(
                f"the 'rcol' format stores register keys as JSON scalars; "
                f"got unsupported key {key!r} of type {type(key).__name__}"
            )
        self._current = {
            "key": key,
            "has_key": bool(key is not None if has_key is None else has_key),
            "n": 0,
            "chunks": [],
            "clients": None,
        }
        self._value_parts = []
        self._value_lengths = []
        self._value_count = 0

    def add_values(self, values: Iterable[Hashable]) -> None:
        """Append entries to the current register's value table (JSON-encoded)."""
        try:
            encoded = [json.dumps(v, sort_keys=True).encode("utf-8") for v in values]
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"the 'rcol' format stores operation values as JSON; "
                f"a value is not JSON-serialisable: {exc}"
            ) from exc
        if encoded:
            self._value_parts.append(b"".join(encoded))
            self._value_lengths.append(
                np.array([len(e) for e in encoded], dtype=np.uint64)
            )
            self._value_count += len(encoded)

    def add_values_raw(self, blob: bytes, lengths) -> None:
        """Append pre-encoded values: a blob of concatenated JSON encodings
        plus the per-value byte lengths (the benchmark fast path)."""
        lengths = np.asarray(lengths, dtype=np.uint64)
        if int(lengths.sum()) != len(blob):
            raise TraceFormatError("value blob length does not match lengths sum")
        if len(blob):
            self._value_parts.append(blob)
            self._value_lengths.append(lengths)
            self._value_count += int(lengths.size)

    def set_clients(self, clients: Sequence[Hashable]) -> None:
        """Set the current register's client side table (JSON scalars)."""
        self._current["clients"] = list(clients)

    def append_chunk(
        self,
        start,
        finish,
        is_write,
        value_id,
        *,
        client_id=None,
        weights=None,
    ) -> None:
        """Write one chunk of rows for the current register."""
        if self._current is None:
            raise TraceFormatError("append_chunk() outside a register")
        cols = {
            "start": np.ascontiguousarray(start, dtype="<f8"),
            "finish": np.ascontiguousarray(finish, dtype="<f8"),
            "is_write": np.ascontiguousarray(is_write, dtype="|u1"),
            "value_id": np.ascontiguousarray(value_id, dtype="<i4"),
        }
        if client_id is not None:
            cols["client_id"] = np.ascontiguousarray(client_id, dtype="<i4")
        if weights is not None:
            cols["weights"] = np.ascontiguousarray(weights, dtype="<i8")
        rows = int(cols["start"].shape[0])
        for name, arr in cols.items():
            if int(arr.shape[0]) != rows:
                raise TraceFormatError(
                    f"column {name!r} has {int(arr.shape[0])} rows, expected {rows}"
                )
        segment_table = {
            name: list(self._write_segment(arr.tobytes()))
            for name, arr in cols.items()
        }
        self._current["chunks"].append({"rows": rows, "cols": segment_table})
        self._current["n"] += rows

    def end_register(self) -> None:
        """Finish the current register: write its value table segments."""
        if self._current is None:
            raise TraceFormatError("end_register() outside a register")
        blob = b"".join(self._value_parts)
        if self._value_lengths:
            lengths = np.concatenate(self._value_lengths)
        else:
            lengths = np.empty(0, dtype=np.uint64)
        offsets = np.concatenate(
            ([0], np.cumsum(lengths, dtype=np.uint64))
        ).astype("<u8")
        blob_seg = self._write_segment(blob)
        off_seg = self._write_segment(offsets.tobytes())
        self._current["values"] = {
            "blob": list(blob_seg),
            "offsets": list(off_seg),
            "count": self._value_count,
        }
        self._registers.append(self._current)
        self._current = None
        self._value_parts = []
        self._value_lengths = []
        self._value_count = 0

    def close(self) -> None:
        """Write the footer, sync the file to stable storage, and close it.

        Without the ``fsync`` (and the directory sync for a freshly created
        trace) the footer — the only thing that makes the file a readable
        container — could still sit in the page cache when a power cut hits,
        leaving a truncated trace that passed "successful" conversion.
        """
        if self._current is not None:
            raise TraceFormatError("close() inside an unfinished register")
        footer = json.dumps(
            {"version": _VERSION, "registers": self._registers},
            sort_keys=True,
        ).encode("utf-8")
        self._fh.write(footer)
        self._fh.write(struct.pack("<Q", len(footer)))
        self._fh.write(END_MAGIC)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        fsync_directory(self._path.parent)


# ======================================================================
# Reader
# ======================================================================
class RcolFile:
    """Lazy, memory-mapped view of an ``.rcol`` trace.

    Parses only the footer up front; :meth:`load_columnar` maps one
    register's columns into a :class:`~repro.core.columnar.ColumnarHistory`
    without materialising operations (single-chunk registers are zero-copy
    views into the file mapping).  Usable as a context manager.
    """

    def __init__(self, path: Union[str, Path]):
        _require_numpy()
        self.path = Path(path)
        size = self.path.stat().st_size
        tail_len = 8 + len(END_MAGIC)
        if size < len(MAGIC) + tail_len:
            raise TraceFormatError(f"{self.path}: not an rcol file (too small)")
        with open(self.path, "rb") as fh:
            if fh.read(len(MAGIC)) != MAGIC:
                raise TraceFormatError(
                    f"{self.path}: not an rcol file (bad magic)"
                )
            fh.seek(size - tail_len)
            tail = fh.read(tail_len)
            if tail[8:] != END_MAGIC:
                raise TraceFormatError(
                    f"{self.path}: truncated or corrupt rcol file (bad end marker)"
                )
            (footer_len,) = struct.unpack("<Q", tail[:8])
            footer_start = size - tail_len - footer_len
            if footer_start < len(MAGIC):
                raise TraceFormatError(
                    f"{self.path}: corrupt rcol footer (impossible length)"
                )
            fh.seek(footer_start)
            footer_bytes = fh.read(footer_len)
        try:
            footer = json.loads(footer_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TraceFormatError(
                f"{self.path}: corrupt rcol footer: {exc}"
            ) from exc
        if footer.get("version") != _VERSION:
            raise TraceFormatError(
                f"{self.path}: unsupported rcol version {footer.get('version')!r}"
            )
        self.registers: List[Dict] = footer["registers"]
        self._by_key = {self._key_of(reg): reg for reg in self.registers}
        self._mm = None

    # ------------------------------------------------------------------
    @staticmethod
    def _key_of(reg: Dict) -> Optional[Hashable]:
        return reg["key"] if reg.get("has_key", True) else None

    def keys(self) -> List[Hashable]:
        """Register keys, in file order."""
        return [self._key_of(reg) for reg in self.registers]

    def register_sizes(self) -> List[Tuple[Hashable, int]]:
        """``(key, num_ops)`` pairs in file order — the partitioner's input."""
        return [(self._key_of(reg), reg["n"]) for reg in self.registers]

    @property
    def num_ops(self) -> int:
        """Total operations across all registers."""
        return sum(reg["n"] for reg in self.registers)

    # ------------------------------------------------------------------
    def _mapping(self):
        if self._mm is None:
            self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        return self._mm

    def _segment(self, seg, dtype):
        off, nbytes = int(seg[0]), int(seg[1])
        return self._mapping()[off : off + nbytes].view(dtype)

    def _column(self, reg: Dict, name: str, default=None):
        """One register column across its chunks (zero-copy when single-chunk)."""
        dtype = COLUMN_DTYPES[name]
        parts = []
        for chunk in reg["chunks"]:
            seg = chunk["cols"].get(name)
            if seg is None:
                if default is None:
                    raise TraceFormatError(
                        f"{self.path}: register {reg['key']!r} chunk is missing "
                        f"required column {name!r}"
                    )
                parts.append(np.full(chunk["rows"], default, dtype=dtype))
            else:
                parts.append(self._segment(seg, dtype))
        if not parts:
            return np.empty(0, dtype=dtype)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _has_column(self, reg: Dict, name: str) -> bool:
        return any(name in chunk["cols"] for chunk in reg["chunks"])

    # ------------------------------------------------------------------
    def load_columnar(self, key: Hashable):
        """Map one register into a :class:`ColumnarHistory` (no Operations).

        Validation matches :meth:`ColumnarHistory.from_rows`: positive
        durations, positive write weights, uniquely-valued writes — all
        checked with array ops, reporting the same error messages.
        """
        reg = self._by_key.get(key)
        if reg is None:
            raise TraceFormatError(
                f"{self.path}: no register with key {key!r}; "
                f"available: {self.keys()!r}"
            )
        start = self._column(reg, "start")
        finish = self._column(reg, "finish")
        is_write = self._column(reg, "is_write")
        value_id = self._column(reg, "value_id")
        client_id = (
            self._column(reg, "client_id", default=-1)
            if self._has_column(reg, "client_id")
            else None
        )
        weights = (
            self._column(reg, "weights", default=1)
            if self._has_column(reg, "weights")
            else None
        )

        bad = np.flatnonzero(finish <= start)
        if bad.size:
            i = int(bad[0])
            raise MalformedOperationError(
                f"operation row {i} has finish {float(finish[i])!r} <= start "
                f"{float(start[i])!r}; operations must take a positive amount of time"
            )
        if weights is not None:
            baddies = np.flatnonzero((is_write != 0) & (weights < 1))
            if baddies.size:
                i = int(baddies[0])
                raise MalformedOperationError(
                    f"write row {i} has non-positive weight {int(weights[i])!r}; "
                    "weights must be positive integers (Section V)"
                )

        n = int(start.shape[0])
        if n > 1:
            ordered = (start[1:] > start[:-1]) | (
                (start[1:] == start[:-1]) & (finish[1:] >= finish[:-1])
            )
            if not bool(ordered.all()):
                # Foreign writer: re-sort into canonical order (copies).
                perm = np.lexsort((finish, start))
                start = np.ascontiguousarray(start[perm])
                finish = np.ascontiguousarray(finish[perm])
                is_write = np.ascontiguousarray(is_write[perm])
                value_id = np.ascontiguousarray(value_id[perm])
                if client_id is not None:
                    client_id = np.ascontiguousarray(client_id[perm])
                if weights is not None:
                    weights = np.ascontiguousarray(weights[perm])

        vmeta = reg["values"]
        blob = self._segment(vmeta["blob"], "|u1")
        offsets = self._segment(vmeta["offsets"], "<u8")
        values = LazyValueTable(blob, offsets)
        return vector.columnar_from_numpy(
            key=self._key_of(reg),
            start=start,
            finish=finish,
            is_write=is_write,
            value_id=value_id,
            values=values,
            op_ids=_fresh_op_ids(n),
            weights=weights,
            client_id=client_id,
            clients=reg.get("clients"),
            has_key=reg.get("has_key", True),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the file mapping (the OS reclaims the pages)."""
        self._mm = None

    def __enter__(self) -> "RcolFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RcolFile {self.path} registers={len(self.registers)} "
            f"ops={self.num_ops}>"
        )


# ======================================================================
# Registry-facing reader/writer
# ======================================================================
def iter_rcol(path: Union[str, Path]) -> Iterator[Operation]:
    """Stream the operations of an ``.rcol`` trace one at a time.

    The generic (object-materialising) read path, used by ``repro convert``
    and anything else that wants interchangeability with the row formats.
    The engine's verification path never calls this — it goes through
    :meth:`RcolFile.load_columnar` instead.
    """
    _require_numpy()
    rf = RcolFile(path)
    for key in rf.keys():
        col = rf.load_columnar(key)
        for i in range(col.n):
            yield col.operation(i)


def dump_rcol(
    trace: Union[History, MultiHistory, Iterable[Operation]],
    path: Union[str, Path],
) -> int:
    """Write a trace as ``.rcol``; returns the operation count.

    Registers are written in sorted key order (matching the row-format
    writers); each register becomes a single chunk of canonical-order
    columns, so loading it back is a zero-copy memory map.
    """
    _require_numpy()
    from ..core.columnar import columnar_of

    if isinstance(trace, History):
        histories = [(trace.key, trace)]
    elif isinstance(trace, MultiHistory):
        histories = [(key, trace[key]) for key in sorted(trace.keys(), key=repr)]
    else:
        multi = TraceBuilder(trace).build()
        histories = [(key, multi[key]) for key in sorted(multi.keys(), key=repr)]

    count = 0
    with RcolWriter(path) as writer:
        for key, history in histories:
            col = columnar_of(history)
            col._ensure_decode_columns()
            writer.begin_register(key, has_key=bool(any(col.has_key)))
            writer.add_values(col.values)
            if col.clients:
                writer.set_clients(col.clients)
            all_default_weights = not any(w != 1 for w in col.weights)
            writer.append_chunk(
                np.frombuffer(col.start, dtype=np.float64),
                np.frombuffer(col.finish, dtype=np.float64),
                np.frombuffer(bytes(col.is_write), dtype=np.uint8),
                np.frombuffer(col.value_id, dtype=np.int32),
                client_id=(
                    np.frombuffer(col.client_id, dtype=np.int32)
                    if col.clients
                    else None
                ),
                weights=(
                    None
                    if all_default_weights
                    else np.frombuffer(col.weights, dtype=np.int64)
                ),
            )
            writer.end_register()
            count += col.n
    return count
