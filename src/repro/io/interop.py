"""Foreign-trace interop: Jepsen/Knossos histories and Porcupine logs.

Most recorded histories in the wild were not written by this library.  The
two de-facto interchange shapes are:

* **Jepsen / Knossos** event histories — a sequence of ``invoke`` / ``ok`` /
  ``fail`` / ``info`` events, one per process transition, as produced by
  Jepsen's register workloads (EDN in the original; this adapter reads the
  common JSON rendering, either a single JSON array or one event object per
  line);
* **Porcupine** operation logs — one record per *completed* operation with
  explicit call/return timestamps, mirroring Porcupine's ``Operation`` struct
  (``ClientId`` / ``Input`` / ``Call`` / ``Output`` / ``Return``).

Both adapters convert into the library's operation model so every consumer —
``repro verify``, the sharded engine, the audit service — accepts foreign
traces uniformly through the format registry (:mod:`repro.io.registry`), and
both have exporters so a verified history can be handed back to the tool it
came from.

Semantics of the event-based (Jepsen) import:

* ``invoke`` opens an operation for its process; the matching ``ok`` closes
  it and supplies the read's returned value (writes take the invoked value);
* ``fail`` means the operation *did not take effect* — it is dropped;
* ``info`` means the outcome is *indeterminate* (e.g. a timed-out write).
  An indeterminate write may have taken effect at any later point, so it is
  kept with its finish extended past the last event — concurrent with
  everything after it, exactly the window a linearizability checker must
  consider.  An indeterminate read constrains nothing and is dropped.

Error behaviour matches the native readers: structurally malformed input
raises :class:`~repro.core.errors.TraceFormatError` tagged with the source
and the event/record position.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.builder import TraceBuilder
from ..core.errors import TraceFormatError
from ..core.history import History, MultiHistory
from ..core.operation import Operation, OpType, trusted_operation
from .formats import _iter_operations

__all__ = [
    "iter_jepsen",
    "load_jepsen",
    "dump_jepsen",
    "iter_porcupine",
    "load_porcupine",
    "dump_porcupine",
]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _iter_json_records(path: Union[str, Path], *, source: str) -> Iterator[Tuple[int, dict]]:
    """Yield ``(position, record)`` from a JSON array file or a JSONL file.

    Jepsen and Porcupine dumps circulate in both shapes; the first
    non-whitespace byte decides (``[`` → one JSON array, otherwise one JSON
    object per line).  Positions are 1-based — array indices or line numbers —
    and appear in error messages.
    """
    with open(path, "r", encoding="utf-8") as fh:
        head = ""
        while True:
            chunk = fh.read(1)
            if not chunk:
                break
            if not chunk.isspace():
                head = chunk
                break
        fh.seek(0)
        if head == "[":
            try:
                records = json.load(fh)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"{source}: invalid JSON: {exc}") from exc
            if not isinstance(records, list):  # pragma: no cover - head was "["
                raise TraceFormatError(f"{source}: expected a JSON array of records")
            for index, record in enumerate(records, start=1):
                yield index, _require_object(record, source, index)
        else:
            for line_number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"{source}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                yield line_number, _require_object(record, source, line_number)


def _require_object(record, source: str, position: int) -> dict:
    if not isinstance(record, dict):
        raise TraceFormatError(
            f"{source}:{position}: expected a JSON object, got {type(record).__name__}"
        )
    return record


def _keyword(value) -> object:
    """Strip the leading colon of an EDN keyword rendered into JSON."""
    if isinstance(value, str) and value.startswith(":"):
        return value[1:]
    return value


def _field(record: dict, *names, default=None):
    """Pull the first present field from aliases (Go exporters capitalise)."""
    for name in names:
        if name in record:
            return record[name]
    return default


def _as_time(value, source: str, position: int, field: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"{source}:{position}: {field} must be numeric, got {value!r}"
        ) from exc


# ----------------------------------------------------------------------
# Jepsen / Knossos event histories
# ----------------------------------------------------------------------
_JEPSEN_TYPES = ("invoke", "ok", "fail", "info")
_JEPSEN_FUNCS = {"read": OpType.READ, "r": OpType.READ, "get": OpType.READ,
                 "write": OpType.WRITE, "w": OpType.WRITE, "put": OpType.WRITE}


class _PendingInvocation:
    """One open invocation of a Jepsen process awaiting its completion event."""

    __slots__ = ("op_type", "value", "key", "start", "position")

    def __init__(self, op_type: OpType, value, key, start: float, position: int):
        self.op_type = op_type
        self.value = value
        self.key = key
        self.start = start
        self.position = position


def iter_jepsen(path: Union[str, Path]) -> Iterator[Operation]:
    """Stream the operations of a Jepsen/Knossos-style JSON event history.

    Events are JSON objects with ``type`` (``invoke``/``ok``/``fail``/
    ``info``), ``f`` (``read``/``write``), ``process``, ``value`` and
    optionally ``key`` and ``time`` (EDN keywords like ``":invoke"`` are
    accepted).  Without a ``time`` field the event's position in the file
    serves as the logical clock.  Operations are yielded in completion
    order; indeterminate (``info``) writes are yielded last, with their
    finish extended past the final event (see the module docstring).
    """
    source = str(path)
    pending: Dict[object, _PendingInvocation] = {}
    indeterminate: List[_PendingInvocation] = []
    last_time = 0.0
    for position, record in _iter_json_records(path, source=source):
        event_type = _keyword(_field(record, "type", ":type"))
        if event_type not in _JEPSEN_TYPES:
            raise TraceFormatError(
                f"{source}:{position}: unknown event type {event_type!r} "
                f"(expected one of {', '.join(_JEPSEN_TYPES)})"
            )
        func = _keyword(_field(record, "f", ":f"))
        op_type = _JEPSEN_FUNCS.get(func if isinstance(func, str) else None)
        if op_type is None:
            raise TraceFormatError(
                f"{source}:{position}: unknown function {func!r} "
                "(expected read/write); only register histories are supported"
            )
        process = _field(record, "process", ":process")
        timestamp = _field(record, "time", ":time")
        if timestamp is None:
            timestamp = position
        timestamp = _as_time(timestamp, source, position, "time")
        last_time = max(last_time, timestamp)
        value = _field(record, "value", ":value")
        key = _field(record, "key", ":key")

        if event_type == "invoke":
            if process in pending:
                raise TraceFormatError(
                    f"{source}:{position}: process {process!r} invoked an "
                    "operation while one is still open (events out of order?)"
                )
            if op_type is OpType.WRITE and value is None:
                raise TraceFormatError(
                    f"{source}:{position}: write invocation carries no value"
                )
            pending[process] = _PendingInvocation(op_type, value, key, timestamp, position)
            continue

        invocation = pending.pop(process, None)
        if invocation is None:
            raise TraceFormatError(
                f"{source}:{position}: {event_type} event for process "
                f"{process!r} has no open invocation"
            )
        if event_type == "fail":
            continue  # the operation did not take effect
        if event_type == "info":
            if invocation.op_type is OpType.WRITE:
                indeterminate.append(invocation)
            continue  # an indeterminate read constrains nothing
        # "ok": reads take the completion value (the invocation's is usually
        # nil), writes keep the invoked value.
        if invocation.op_type is OpType.READ:
            final_value = value if value is not None else invocation.value
        else:
            final_value = invocation.value
        finish = timestamp if timestamp > invocation.start else invocation.start + 1.0
        yield trusted_operation(
            invocation.op_type,
            final_value,
            invocation.start,
            finish,
            key=invocation.key if invocation.key is not None else key,
            client=process,
        )
    # End of history: still-open invocations never completed (crashed client),
    # which is the same indeterminacy as an explicit info event.
    for invocation in pending.values():
        if invocation.op_type is OpType.WRITE:
            indeterminate.append(invocation)
    for invocation in sorted(indeterminate, key=lambda inv: (inv.start, inv.position)):
        yield trusted_operation(
            invocation.op_type,
            invocation.value,
            invocation.start,
            max(last_time, invocation.start) + 1.0,
            key=invocation.key,
        )


def load_jepsen(path: Union[str, Path]) -> MultiHistory:
    """Load a Jepsen-style event history into a :class:`MultiHistory`."""
    return TraceBuilder(iter_jepsen(path)).build()


def dump_jepsen(
    trace: Union[History, MultiHistory, Iterable[Operation]], path: Union[str, Path]
) -> int:
    """Write a trace as a Jepsen-style JSON event array; returns the op count.

    Every operation becomes an ``invoke``/``ok`` event pair at its start and
    finish timestamps, interleaved across the whole trace in time order (ties
    complete before they invoke, preserving the precedence partial order).
    Clients map to integer process ids in first-appearance order; because a
    Jepsen process is single-threaded, a client whose operations overlap (or a
    ``None`` client) is spread over as many process ids as its concurrency
    requires.  Re-importing with :func:`iter_jepsen` reproduces the same
    operations.
    """
    ops = _iter_operations(trace)
    # client -> [(process_id, busy_until)]: one lane per concurrent operation.
    lanes: Dict[object, List[List[float]]] = {}
    next_process = 0
    events: List[Tuple[float, int, int, dict]] = []  # (time, phase, seq, event)
    for seq, op in enumerate(sorted(ops, key=lambda o: (o.start, o.finish, o.op_id))):
        client_lanes = lanes.setdefault(op.client, [])
        for lane in client_lanes:
            if lane[1] <= op.start:
                lane[1] = op.finish
                process = int(lane[0])
                break
        else:
            process = next_process
            next_process += 1
            client_lanes.append([process, op.finish])
        func = "write" if op.is_write else "read"
        base = {"process": process, "f": func}
        if op.key is not None:
            base["key"] = op.key
        invoke = dict(base, type="invoke", time=op.start,
                      value=op.value if op.is_write else None)
        ok = dict(base, type="ok", time=op.finish, value=op.value)
        # phase 0 = completion, phase 1 = invocation: at equal timestamps the
        # finishing operation is ordered first so it still precedes the
        # starting one after the round trip.
        events.append((op.start, 1, seq, invoke))
        events.append((op.finish, 0, seq, ok))
    events.sort(key=lambda item: item[:3])
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("[\n")
        for index, (_, _, _, event) in enumerate(events):
            comma = "," if index < len(events) - 1 else ""
            fh.write(f"  {json.dumps(event, sort_keys=True)}{comma}\n")
        fh.write("]\n")
    return len(events) // 2


# ----------------------------------------------------------------------
# Porcupine operation logs
# ----------------------------------------------------------------------
def iter_porcupine(path: Union[str, Path]) -> Iterator[Operation]:
    """Stream the operations of a Porcupine-style operation log.

    Each record mirrors Porcupine's ``Operation`` struct: ``client`` (or
    ``ClientId``), ``call``/``Call`` and ``return``/``Return`` timestamps,
    an ``input`` object (``{"op": "read"|"write", "key": ..., "value": ...}``)
    and an ``output`` object (``{"value": ...}``, or a bare value).  Reads
    take their value from the output, writes from the input.  Accepts a JSON
    array or one record per line.
    """
    source = str(path)
    for position, record in _iter_json_records(path, source=source):
        input_obj = _field(record, "input", "Input")
        if not isinstance(input_obj, dict):
            raise TraceFormatError(
                f"{source}:{position}: record has no input object"
            )
        func = _keyword(_field(input_obj, "op", "Op", "f"))
        op_type = _JEPSEN_FUNCS.get(func if isinstance(func, str) else None)
        if op_type is None:
            raise TraceFormatError(
                f"{source}:{position}: unknown operation {func!r} "
                "(expected read/write)"
            )
        start = _as_time(_field(record, "call", "Call"), source, position, "call")
        finish = _as_time(_field(record, "return", "Return"), source, position, "return")
        if finish <= start:
            raise TraceFormatError(
                f"{source}:{position}: return time {finish!r} is not after "
                f"call time {start!r}"
            )
        output_obj = _field(record, "output", "Output")
        if op_type is OpType.READ:
            if isinstance(output_obj, dict):
                value = _field(output_obj, "value", "Value")
            else:
                value = output_obj
            if value is None:
                value = _field(input_obj, "value", "Value")
        else:
            value = _field(input_obj, "value", "Value")
            if value is None:
                raise TraceFormatError(
                    f"{source}:{position}: write record carries no input value"
                )
        yield trusted_operation(
            op_type,
            value,
            start,
            finish,
            key=_field(input_obj, "key", "Key"),
            client=_field(record, "client", "ClientId", "client_id"),
        )


def load_porcupine(path: Union[str, Path]) -> MultiHistory:
    """Load a Porcupine-style operation log into a :class:`MultiHistory`."""
    return TraceBuilder(iter_porcupine(path)).build()


def dump_porcupine(
    trace: Union[History, MultiHistory, Iterable[Operation]], path: Union[str, Path]
) -> int:
    """Write a trace as a Porcupine-style operation log (one record per line).

    Records carry ``client``, ``call``/``return`` timestamps, the ``input``
    (op, key, value for writes) and the ``output`` (value for reads), so
    re-importing with :func:`iter_porcupine` reproduces the same operations.
    """
    ops = _iter_operations(trace)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for op in sorted(ops, key=lambda o: (o.start, o.finish, o.op_id)):
            input_obj: dict = {"op": "write" if op.is_write else "read"}
            if op.key is not None:
                input_obj["key"] = op.key
            if op.is_write:
                input_obj["value"] = op.value
            record = {
                "client": op.client,
                "call": op.start,
                "return": op.finish,
                "input": input_obj,
                "output": {"value": op.value} if op.is_read else None,
            }
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
            count += 1
    return count
