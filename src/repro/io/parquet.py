"""Optional Apache Parquet trace format (soft dependency on ``pyarrow``).

Parquet is the lingua franca of analytics pipelines; this module lets traces
flow between ``repro`` and dataframe tooling without a JSONL detour.  The
format registers unconditionally so it shows up in ``repro formats``, but
reading or writing without ``pyarrow`` installed raises a
:class:`~repro.core.errors.TraceFormatError` explaining the missing extra
(``pip install repro-katomicity[arrow]``).

Schema (one row per operation)::

    op_type  string   "read" | "write"
    key      string?  JSON-encoded register key (null = keyless)
    value    string   JSON-encoded operation value
    start    float64
    finish   float64
    client   string?  JSON-encoded client id (null = none)
    weight   int64    write weight (1 for reads)

``key``/``value``/``client`` are JSON-encoded strings rather than native
columns so arbitrary (non-string) scalars round-trip exactly, matching the
JSONL representation field for field.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Union

from ..core.errors import TraceFormatError
from ..core.history import History, MultiHistory
from ..core.operation import Operation

__all__ = ["PYARROW_AVAILABLE", "iter_parquet", "dump_parquet"]

try:  # pragma: no cover - exercised via both branches in CI matrices
    import pyarrow  # noqa: F401

    PYARROW_AVAILABLE = True
except ImportError:  # pragma: no cover
    PYARROW_AVAILABLE = False


def _require_pyarrow():
    if not PYARROW_AVAILABLE:
        raise TraceFormatError(
            "the 'parquet' trace format requires pyarrow, which is not "
            "installed; install the optional extra: "
            "pip install repro-katomicity[arrow]"
        )
    import pyarrow.parquet as pq

    return pq


def _decode(text):
    return None if text is None else json.loads(text)


def iter_parquet(path: Union[str, Path]) -> Iterator[Operation]:
    """Stream operations from a Parquet trace file, batch by batch."""
    from .formats import _fast_operation_from_record

    pq = _require_pyarrow()
    table = pq.ParquetFile(path)
    for batch in table.iter_batches():
        cols = {name: batch.column(name).to_pylist() for name in batch.schema.names}
        n = batch.num_rows
        for i in range(n):
            record = {
                "op_type": cols["op_type"][i],
                "key": _decode(cols.get("key", [None] * n)[i]),
                "value": _decode(cols["value"][i]),
                "start": cols["start"][i],
                "finish": cols["finish"][i],
                "client": _decode(cols.get("client", [None] * n)[i]),
            }
            weight = cols.get("weight")
            if weight is not None and weight[i] is not None:
                record["weight"] = weight[i]
            yield _fast_operation_from_record(record)


def dump_parquet(
    trace: Union[History, MultiHistory, Iterable[Operation]],
    path: Union[str, Path],
) -> int:
    """Write a trace as Parquet; returns the operation count."""
    pq = _require_pyarrow()
    import pyarrow as pa

    from .formats import _iter_operations

    ops = _iter_operations(trace)
    encode = json.dumps
    table = pa.table(
        {
            "op_type": pa.array([op.op_type.value for op in ops], type=pa.string()),
            "key": pa.array(
                [None if op.key is None else encode(op.key) for op in ops],
                type=pa.string(),
            ),
            "value": pa.array([encode(op.value) for op in ops], type=pa.string()),
            "start": pa.array([op.start for op in ops], type=pa.float64()),
            "finish": pa.array([op.finish for op in ops], type=pa.float64()),
            "client": pa.array(
                [None if op.client is None else encode(op.client) for op in ops],
                type=pa.string(),
            ),
            "weight": pa.array([op.weight for op in ops], type=pa.int64()),
        }
    )
    pq.write_table(table, path)
    return len(ops)
