"""Trace input/output: native JSON Lines / CSV plus foreign-trace interop.

The native formats (:mod:`repro.io.formats`) round-trip the library's own
operation model; the interop adapters (:mod:`repro.io.interop`) ingest and
emit Jepsen/Knossos event histories and Porcupine operation logs.  All of
them sit behind one format registry (:mod:`repro.io.registry`), so every
path-accepting entry point — ``stream_trace``/``load_trace``/``dump_trace``,
the CLI's ``--format`` flag, :meth:`repro.engine.Engine.verify_file`, the
audit-service client — speaks every format uniformly.
"""

from .formats import (
    JsonlDecoder,
    dump_csv,
    dump_jsonl,
    follow_jsonl,
    iter_csv,
    iter_jsonl,
    iter_jsonl_handle,
    load_columnar,
    load_csv,
    load_jsonl,
    load_trace,
    operation_from_dict,
    operation_to_dict,
    stream_trace,
)
from .interop import (
    dump_jepsen,
    dump_porcupine,
    iter_jepsen,
    iter_porcupine,
    load_jepsen,
    load_porcupine,
)
from .registry import (
    FORMATS,
    TraceFormat,
    available_formats,
    detect_format,
    dump_trace,
    get_format,
    register_format,
    resolve_format,
)

__all__ = [
    "FORMATS",
    "JsonlDecoder",
    "TraceFormat",
    "available_formats",
    "detect_format",
    "dump_csv",
    "dump_jepsen",
    "dump_jsonl",
    "dump_porcupine",
    "dump_trace",
    "follow_jsonl",
    "get_format",
    "iter_csv",
    "iter_jepsen",
    "iter_jsonl",
    "iter_jsonl_handle",
    "iter_porcupine",
    "load_columnar",
    "load_csv",
    "load_jepsen",
    "load_jsonl",
    "load_porcupine",
    "load_trace",
    "operation_from_dict",
    "operation_to_dict",
    "register_format",
    "resolve_format",
    "stream_trace",
]
