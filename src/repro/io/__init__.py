"""Trace input/output (JSON Lines and CSV), batch and streaming."""

from .formats import (
    dump_csv,
    dump_jsonl,
    follow_jsonl,
    iter_csv,
    iter_jsonl,
    iter_jsonl_handle,
    load_csv,
    load_jsonl,
    load_trace,
    operation_from_dict,
    operation_to_dict,
    stream_trace,
)

__all__ = [
    "dump_csv",
    "dump_jsonl",
    "follow_jsonl",
    "iter_csv",
    "iter_jsonl",
    "iter_jsonl_handle",
    "load_csv",
    "load_jsonl",
    "load_trace",
    "operation_from_dict",
    "operation_to_dict",
    "stream_trace",
]
