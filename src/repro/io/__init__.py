"""Trace input/output (JSON Lines and CSV)."""

from .formats import (
    dump_csv,
    dump_jsonl,
    load_csv,
    load_jsonl,
    operation_from_dict,
    operation_to_dict,
)

__all__ = [
    "dump_csv",
    "dump_jsonl",
    "load_csv",
    "load_jsonl",
    "operation_from_dict",
    "operation_to_dict",
]
