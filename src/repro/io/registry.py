"""Format registry: the single source of truth for trace formats.

Every place that turns a path into operations — ``repro verify``/``watch``/
``audit``, :meth:`repro.engine.Engine.verify_file`, the audit-service client —
resolves the format here, either explicitly by name (``--format jepsen``) or
by sniffing the file extension.  Registering a :class:`TraceFormat` makes a
format available everywhere at once; nothing else hard-codes an extension.

    >>> detect_format("trace.jsonl").name
    'jsonl'
    >>> detect_format("history.jepsen.json").name
    'jepsen'
    >>> get_format("csv").extensions
    ('.csv',)

Built-in formats:

========== ============================== ======================================
name       extensions                     shape
========== ============================== ======================================
jsonl      ``.jsonl`` ``.ndjson``         native JSON Lines (one op per line)
csv        ``.csv``                       flat CSV export
jepsen     ``.jepsen`` ``.jepsen.json``   Jepsen/Knossos invoke/ok event history
           ``.edn.json``
porcupine  ``.porcupine``                 Porcupine-style call/return records
           ``.porcupine.json``
rcol       ``.rcol``                      memory-mapped columnar binary (lazy,
                                          out-of-core; requires numpy)
parquet    ``.parquet``                   Apache Parquet export (requires the
                                          optional ``pyarrow`` extra)
========== ============================== ======================================

Paths with none of these extensions default to ``jsonl`` (the historical
behaviour of :func:`repro.io.formats.stream_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple, Union

from ..core.builder import TraceBuilder
from ..core.errors import TraceFormatError
from ..core.history import History, MultiHistory
from ..core.operation import Operation
from . import formats as _formats
from . import interop as _interop
from . import parquet as _parquet
from . import rcol as _rcol

__all__ = [
    "TraceFormat",
    "FORMATS",
    "register_format",
    "get_format",
    "detect_format",
    "resolve_format",
    "available_formats",
    "stream_trace",
    "load_trace",
    "dump_trace",
]

TraceLike = Union[History, MultiHistory, Iterable[Operation]]


@dataclass(frozen=True)
class TraceFormat:
    """One registered trace format: how to recognise, read and write it."""

    name: str
    description: str
    #: Filename suffixes that select this format during sniffing, matched
    #: case-insensitively against the end of the filename (so compound
    #: suffixes like ``.jepsen.json`` work).  May be empty for formats that
    #: are only ever selected by name.
    extensions: Tuple[str, ...]
    #: ``reader(path) -> Iterator[Operation]`` — streaming, one op at a time.
    reader: Callable[[Union[str, Path]], Iterator[Operation]]
    #: ``writer(trace, path) -> int`` (op count), or ``None`` if write-less.
    writer: Optional[Callable[[TraceLike, Union[str, Path]], int]] = None

    def matches(self, filename: str) -> bool:
        """True iff the filename carries one of this format's extensions."""
        lowered = filename.lower()
        return any(lowered.endswith(ext) for ext in self.extensions)


FORMATS: Dict[str, TraceFormat] = {}


def register_format(spec: TraceFormat) -> TraceFormat:
    """Add a format to the registry; rejects name/extension collisions."""
    key = spec.name.strip().lower()
    if key in FORMATS:
        raise TraceFormatError(f"trace format {spec.name!r} is already registered")
    for other in FORMATS.values():
        clash = set(ext.lower() for ext in spec.extensions) & set(
            ext.lower() for ext in other.extensions
        )
        if clash:
            raise TraceFormatError(
                f"trace format {spec.name!r} claims extension(s) "
                f"{sorted(clash)} already owned by {other.name!r}"
            )
    FORMATS[key] = spec
    return spec


def get_format(name: str) -> TraceFormat:
    """Look up a format by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in FORMATS:
        raise TraceFormatError(
            f"unknown trace format {name!r}; available: {', '.join(sorted(FORMATS))}"
        )
    return FORMATS[key]


def detect_format(path: Union[str, Path]) -> TraceFormat:
    """Sniff the format of a path by extension (longest match wins).

    Unrecognised extensions fall back to ``jsonl``, preserving the historical
    default of the native readers.
    """
    filename = Path(path).name
    best: Optional[TraceFormat] = None
    best_len = -1
    for spec in FORMATS.values():
        for ext in spec.extensions:
            if filename.lower().endswith(ext.lower()) and len(ext) > best_len:
                best, best_len = spec, len(ext)
    return best if best is not None else FORMATS["jsonl"]


def resolve_format(path: Union[str, Path], fmt: Optional[str] = None) -> TraceFormat:
    """The format to use for ``path``: explicit ``fmt`` if given, else sniffed."""
    return get_format(fmt) if fmt else detect_format(path)


def available_formats() -> Dict[str, str]:
    """Mapping from format name to its one-line description."""
    return {name: spec.description for name, spec in sorted(FORMATS.items())}


# ----------------------------------------------------------------------
# Registry-routed entry points
# ----------------------------------------------------------------------
def stream_trace(path: Union[str, Path], fmt: Optional[str] = None) -> Iterator[Operation]:
    """Stream any supported trace file, one operation at a time."""
    return resolve_format(path, fmt).reader(path)


def load_trace(path: Union[str, Path], fmt: Optional[str] = None) -> MultiHistory:
    """Load any supported trace file into a :class:`MultiHistory`."""
    return TraceBuilder(stream_trace(path, fmt)).build()


def dump_trace(trace: TraceLike, path: Union[str, Path], fmt: Optional[str] = None) -> int:
    """Write a trace in any supported format; returns the operation count."""
    spec = resolve_format(path, fmt)
    if spec.writer is None:
        raise TraceFormatError(f"trace format {spec.name!r} has no writer")
    return spec.writer(trace, path)


# ----------------------------------------------------------------------
# Built-in formats
# ----------------------------------------------------------------------
register_format(
    TraceFormat(
        name="jsonl",
        description="native JSON Lines trace (one operation object per line)",
        extensions=(".jsonl", ".ndjson"),
        reader=_formats.iter_jsonl,
        writer=_formats.dump_jsonl,
    )
)
register_format(
    TraceFormat(
        name="csv",
        description="flat CSV export (spreadsheets, ad-hoc scripts)",
        extensions=(".csv",),
        reader=_formats.iter_csv,
        writer=_formats.dump_csv,
    )
)
register_format(
    TraceFormat(
        name="jepsen",
        description="Jepsen/Knossos-style invoke/ok/fail/info event history "
        "(JSON array or JSONL)",
        extensions=(".jepsen", ".jepsen.json", ".edn.json"),
        reader=_interop.iter_jepsen,
        writer=_interop.dump_jepsen,
    )
)
register_format(
    TraceFormat(
        name="porcupine",
        description="Porcupine-style operation log (call/return records)",
        extensions=(".porcupine", ".porcupine.json"),
        reader=_interop.iter_porcupine,
        writer=_interop.dump_porcupine,
    )
)
register_format(
    TraceFormat(
        name="rcol",
        description="memory-mapped columnar binary: chunked per-register "
        "segments, lazy out-of-core ingestion (requires numpy)",
        extensions=(".rcol",),
        reader=_rcol.iter_rcol,
        writer=_rcol.dump_rcol,
    )
)
register_format(
    TraceFormat(
        name="parquet",
        description="Apache Parquet export for dataframe/analytics tooling "
        "(requires the optional pyarrow extra)",
        extensions=(".parquet",),
        reader=_parquet.iter_parquet,
        writer=_parquet.dump_parquet,
    )
)
