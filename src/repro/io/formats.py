"""Trace serialisation: JSON Lines and CSV.

Real audits run against traces captured from a live system, so the library
can round-trip histories through two simple, tool-friendly formats:

* **JSON Lines** (one operation object per line) — the primary format; it
  preserves keys, client identifiers and write weights exactly;
* **CSV** — a lowest-common-denominator export for spreadsheets and ad-hoc
  scripts.

Both formats store, per operation: type (``read``/``write``), key, value,
start, finish, client, and (for writes) the weight.  Values are stored as
strings; the uniqueness assumption of Section II-C is checked when the trace
is loaded back into :class:`~repro.core.history.History` objects.

Readers come in two shapes: the ``iter_*`` generators stream one
:class:`~repro.core.operation.Operation` at a time (the ingestion stage of
the sharded verification engine feeds them straight into a
:class:`~repro.core.builder.TraceBuilder`, bucketing the trace by register
as it is read instead of accumulating one flat list and regrouping), and the
``load_*`` functions materialise a full
:class:`~repro.core.history.MultiHistory` for callers that want the classic
snapshot.
"""

from __future__ import annotations

import codecs
import csv
import json
import time
from collections import defaultdict
from pathlib import Path
from typing import Dict, IO, Iterable, Iterator, List, Optional, Union

from ..core.builder import TraceBuilder
from ..core.columnar import ColumnarHistory
from ..core.errors import TraceFormatError
from ..core.history import History, MultiHistory
from ..core.operation import Operation, OpType, trusted_operation

__all__ = [
    "operation_to_dict",
    "operation_from_dict",
    "dump_jsonl",
    "load_jsonl",
    "iter_jsonl",
    "iter_jsonl_handle",
    "follow_jsonl",
    "JsonlDecoder",
    "dump_csv",
    "load_csv",
    "iter_csv",
    "stream_trace",
    "load_trace",
    "load_columnar",
]

_CSV_FIELDS = ["op_type", "key", "value", "start", "finish", "client", "weight"]

_READ = OpType.READ
_WRITE = OpType.WRITE


def _fast_operation_from_record(record: Dict) -> Operation:
    """Decode one trace record without the generic dict round-trip.

    The streaming readers decode millions of records; this inlines the happy
    path of :func:`operation_from_dict` — direct field pulls, the trusted
    constructor instead of the revalidating dataclass ``__init__`` — and
    delegates every unusual record (unknown type tag, non-positive duration,
    bad weight) back to the slow path so error behaviour stays identical.
    """
    try:
        tag = record["op_type"]
        if tag == "read":
            op_type = _READ
        elif tag == "write":
            op_type = _WRITE
        else:
            return operation_from_dict(record)
        start = float(record["start"])
        finish = float(record["finish"])
        value = record["value"]
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed operation record: {record!r}") from exc
    # Weight conversion sits outside the try and runs for reads too, exactly
    # like the slow path (a malformed weight raises ValueError, not
    # TraceFormatError, regardless of operation type).
    weight = int(record.get("weight", 1) or 1)
    if finish <= start or weight < 1:
        return operation_from_dict(record)  # raises with the canonical message
    return trusted_operation(
        op_type,
        value,
        start,
        finish,
        key=record.get("key"),
        client=record.get("client"),
        weight=weight if op_type is _WRITE else 1,
    )


def _record_to_row(record: Dict):
    """Decode one record to a columnar row ``(is_write, value, start, finish,
    client, weight)`` with the same error contract as the operation readers:
    malformed basics raise :class:`TraceFormatError`, a malformed weight
    raises ``ValueError`` from outside the guarded block."""
    try:
        tag = record["op_type"]
        if tag == "write":
            is_write = True
        elif tag == "read":
            is_write = False
        else:
            raise ValueError(f"unknown op_type {tag!r}")
        row_head = (record["value"], float(record["start"]), float(record["finish"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed operation record: {record!r}") from exc
    weight = int(record.get("weight", 1) or 1)
    return (is_write, *row_head, record.get("client"), weight if is_write else 1)


def operation_to_dict(op: Operation) -> Dict:
    """Convert an operation to a JSON-serialisable dictionary."""
    record = {
        "op_type": op.op_type.value,
        "key": op.key,
        "value": op.value,
        "start": op.start,
        "finish": op.finish,
        "client": op.client,
    }
    if op.is_write:
        record["weight"] = op.weight
    return record


def operation_from_dict(record: Dict) -> Operation:
    """Build an operation from a dictionary produced by :func:`operation_to_dict`."""
    try:
        op_type = OpType(record["op_type"])
        start = float(record["start"])
        finish = float(record["finish"])
        value = record["value"]
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(f"malformed operation record: {record!r}") from exc
    weight = int(record.get("weight", 1) or 1)
    return Operation(
        op_type=op_type,
        value=value,
        start=start,
        finish=finish,
        key=record.get("key"),
        client=record.get("client"),
        weight=weight if op_type is OpType.WRITE else 1,
    )


# ----------------------------------------------------------------------
# JSON Lines
# ----------------------------------------------------------------------
def dump_jsonl(trace: Union[History, MultiHistory, Iterable[Operation]], path: Union[str, Path]) -> int:
    """Write a trace to a JSON Lines file; returns the number of operations."""
    ops = _iter_operations(trace)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for op in ops:
            fh.write(json.dumps(operation_to_dict(op), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def iter_jsonl(path: Union[str, Path]) -> Iterator[Operation]:
    """Stream the operations of a JSON Lines trace one at a time."""
    with open(path, "r", encoding="utf-8") as fh:
        yield from iter_jsonl_handle(fh, source=str(path))


def iter_jsonl_handle(
    fh: Union[IO[str], Iterable[str]], *, source: str = "<stream>"
) -> Iterator[Operation]:
    """Stream operations from an open JSON Lines text handle (or line iterable).

    This is the ingestion surface of ``repro watch -``: any line-oriented
    text source works — ``sys.stdin``, a pipe from another process, a socket
    file object, a generator of lines — without the caller materialising
    anything.  ``source`` is used in error messages in place of a file name.
    """
    loads = json.loads
    decode = _fast_operation_from_record
    for line_number, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{source}:{line_number}: invalid JSON: {exc}"
            ) from exc
        yield decode(record)


def follow_jsonl(
    path: Union[str, Path],
    *,
    poll_interval_s: float = 0.2,
    idle_timeout_s: Optional[float] = None,
    from_start: bool = True,
) -> Iterator[Operation]:
    """Tail a JSON Lines trace file, yielding operations as they are appended.

    The live-audit counterpart of :func:`iter_jsonl`: a store (or the
    simulator) appends operations to a log while ``repro watch --follow``
    verifies them.  Partial lines (a writer mid-append) are buffered until
    their newline arrives.  The generator ends when no new data has arrived
    for ``idle_timeout_s`` seconds (``None`` follows forever, like
    ``tail -f``); ``from_start=False`` skips the existing content and watches
    only new appends.
    """
    if poll_interval_s <= 0:
        raise TraceFormatError(
            f"poll_interval_s must be positive, got {poll_interval_s!r}"
        )

    def tailed_lines():
        buffer = ""
        with open(path, "r", encoding="utf-8") as fh:
            if not from_start:
                fh.seek(0, 2)  # end of file
            last_data = time.monotonic()
            while True:
                chunk = fh.readline()
                if chunk:
                    last_data = time.monotonic()
                    buffer += chunk
                    if buffer.endswith("\n"):
                        yield buffer
                        buffer = ""
                    # else: partial line — wait for the writer to finish it
                    continue
                if (
                    idle_timeout_s is not None
                    and time.monotonic() - last_data >= idle_timeout_s
                ):
                    # A final record without a trailing newline (writer died
                    # mid-append or never terminated the file) still counts.
                    if buffer:
                        yield buffer
                    return
                time.sleep(poll_interval_s)

    yield from iter_jsonl_handle(tailed_lines(), source=str(path))


def load_jsonl(path: Union[str, Path]) -> MultiHistory:
    """Load a JSON Lines trace into a :class:`MultiHistory`."""
    return TraceBuilder(iter_jsonl(path)).build()


class JsonlDecoder:
    """Incremental JSON Lines decoder for asynchronous/chunked ingestion.

    The line-oriented readers above pull from a blocking handle; an asyncio
    transport instead *pushes* arbitrary byte/str chunks that may split a
    record anywhere.  The decoder buffers the trailing partial line between
    :meth:`feed` calls and emits one :class:`~repro.core.operation.Operation`
    per completed line, so the audit service's network layer decodes exactly
    the trace format the file readers accept::

        decoder = JsonlDecoder(source="client-7")
        for chunk in transport_chunks:
            for op in decoder.feed(chunk):
                session.feed(op)
        decoder.flush()  # a final record without a trailing newline

    Error behaviour matches :func:`iter_jsonl_handle`: malformed JSON and
    malformed records raise :class:`~repro.core.errors.TraceFormatError`
    tagged with ``source`` and the line number.

    With ``mixed=True`` the stream may interleave *control frames* with
    operation records: a JSON object carrying a ``"type"`` field (and no
    ``"op_type"``) is returned as a plain dict, in stream order, instead of
    being decoded as an operation.  This is the framing of the audit
    service's session protocol (:mod:`repro.service`), where ``hello`` /
    ``checkpoint`` / ``end`` frames ride the same newline-delimited channel
    as the trace itself.
    """

    __slots__ = ("source", "mixed", "_buffer", "_line_number", "_utf8")

    def __init__(self, *, source: str = "<stream>", mixed: bool = False):
        self.source = source
        self.mixed = mixed
        self._buffer = ""
        self._line_number = 0
        # Transports split chunks at arbitrary byte offsets, so a multi-byte
        # UTF-8 character can straddle two feed() calls; the incremental
        # decoder holds the partial sequence instead of raising.
        self._utf8 = codecs.getincrementaldecoder("utf-8")()

    @property
    def pending(self) -> bool:
        """True iff a partial line is buffered awaiting its newline."""
        return bool(self._buffer)

    @property
    def pending_bytes(self) -> int:
        """Size of the buffered partial line, in UTF-8 bytes.

        Consumers reading from untrusted transports should bound this — a
        peer that never sends a newline otherwise grows the buffer without
        limit (the audit server aborts past its frame-size cap).  Measured
        in encoded bytes so the cap matches what actually arrived on the
        wire, not the (up to 4x smaller) character count.
        """
        return len(self._buffer.encode("utf-8"))

    def feed(self, data: Union[str, bytes]) -> List[Operation]:
        """Decode one chunk; returns the operations its complete lines held."""
        if isinstance(data, bytes):
            try:
                data = self._utf8.decode(data)
            except UnicodeDecodeError as exc:
                self._utf8.reset()
                raise TraceFormatError(
                    f"{self.source}:{self._line_number + 1}: "
                    f"invalid UTF-8 in stream: {exc}"
                ) from exc
        self._buffer += data
        if "\n" not in self._buffer:
            return []
        lines = self._buffer.split("\n")
        self._buffer = lines.pop()
        decoded = []
        for line in lines:
            # Physical line numbering (blank lines included), matching what
            # iter_jsonl_handle reports for the same byte stream.
            self._line_number += 1
            if line.strip():
                decoded.append(self._decode(line))
        return decoded

    def flush(self) -> List[Operation]:
        """Decode a trailing record that never received its newline."""
        try:
            tail = self._utf8.decode(b"", final=True)
        except UnicodeDecodeError as exc:
            self._utf8.reset()
            raise TraceFormatError(
                f"{self.source}:{self._line_number + 1}: "
                f"truncated UTF-8 sequence at end of stream: {exc}"
            ) from exc
        line = self._buffer + tail
        self._buffer = ""
        if not line.strip():
            return []
        self._line_number += 1
        return [self._decode(line)]

    def _decode(self, line: str):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{self.source}:{self._line_number}: invalid JSON: {exc}"
            ) from exc
        if (
            self.mixed
            and isinstance(record, dict)
            and "type" in record
            and "op_type" not in record
        ):
            return record
        try:
            return _fast_operation_from_record(record)
        except TraceFormatError as exc:
            raise TraceFormatError(
                f"{self.source}:{self._line_number}: {exc}"
            ) from exc


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def dump_csv(trace: Union[History, MultiHistory, Iterable[Operation]], path: Union[str, Path]) -> int:
    """Write a trace to CSV; returns the number of operations."""
    ops = _iter_operations(trace)
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for op in ops:
            record = operation_to_dict(op)
            record.setdefault("weight", "")
            writer.writerow({field: record.get(field, "") for field in _CSV_FIELDS})
            count += 1
    return count


def iter_csv(path: Union[str, Path]) -> Iterator[Operation]:
    """Stream the operations of a CSV trace one at a time."""
    decode = _fast_operation_from_record
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        for row_number, row in enumerate(reader, start=2):
            record = dict(row)
            if record.get("weight") in ("", None):
                record["weight"] = 1
            if record.get("client") in ("", None):
                record["client"] = None
            if record.get("key") in ("", None):
                record["key"] = None
            try:
                yield decode(record)
            except TraceFormatError as exc:
                raise TraceFormatError(f"{path}:{row_number}: {exc}") from exc


def load_csv(path: Union[str, Path]) -> MultiHistory:
    """Load a CSV trace into a :class:`MultiHistory`."""
    return TraceBuilder(iter_csv(path)).build()


# ----------------------------------------------------------------------
# Format dispatch (routed through the format registry)
# ----------------------------------------------------------------------
def stream_trace(path: Union[str, Path], fmt: Optional[str] = None) -> Iterator[Operation]:
    """Stream any supported trace file, one operation at a time.

    Dispatch goes through the format registry (:mod:`repro.io.registry`):
    ``fmt`` selects a registered format by name, otherwise the extension is
    sniffed (JSONL default).  The import is deferred because the registry
    itself registers the readers defined in this module.
    """
    from .registry import resolve_format

    return resolve_format(path, fmt).reader(path)


def load_trace(path: Union[str, Path], fmt: Optional[str] = None) -> MultiHistory:
    """Load any supported trace file into a :class:`MultiHistory`."""
    return TraceBuilder(stream_trace(path, fmt)).build()


def load_columnar(path: Union[str, Path], fmt: Optional[str] = None) -> Dict:
    """Load a trace straight into per-register columnar encodings.

    Operations are *not* materialised: each record's fields go directly into
    the per-register row buckets and then into a
    :class:`~repro.core.columnar.ColumnarHistory` per register.  Returns a
    mapping from register key to encoding; call ``.to_history()`` on an entry
    (or verify through the columnar kernels) as needed — the materialised
    history arrives with its encoding pre-cached.

    JSONL only takes the fully column-oriented route; every other registered
    format (CSV, the foreign-trace adapters) reuses its operation stream —
    per-record dict handling dominates there either way.
    """
    from .registry import resolve_format

    spec = resolve_format(path, fmt)
    p = Path(path)
    if spec.name != "jsonl":
        rows_by_key: Dict = defaultdict(list)
        for op in spec.reader(p):
            rows_by_key[op.key].append(
                (op.is_write, op.value, op.start, op.finish, op.client, op.weight)
            )
    else:
        rows_by_key = defaultdict(list)
        loads = json.loads
        to_row = _record_to_row
        with open(p, "r", encoding="utf-8") as fh:
            for line_number, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"{p}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                rows_by_key[record.get("key")].append(to_row(record))
    return {
        key: ColumnarHistory.from_rows(rows, key=key)
        for key, rows in rows_by_key.items()
    }


# ----------------------------------------------------------------------
def _iter_operations(trace: Union[History, MultiHistory, Iterable[Operation]]) -> List[Operation]:
    if isinstance(trace, History):
        return list(trace.operations)
    if isinstance(trace, MultiHistory):
        ops: List[Operation] = []
        for key in sorted(trace.keys(), key=repr):
            ops.extend(trace[key].operations)
        return ops
    return list(trace)
