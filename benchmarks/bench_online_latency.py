"""Online verification latency: per-operation cost and window-flush latency.

The online stack trades one big batch pass for many small increments; this
benchmark quantifies that trade on a 64-register synthetic trace:

* **batch baseline** — ``Engine`` (serial) over the complete trace: the cost
  an offline audit pays once, *after* the trace is finished;
* **per-operation feed cost** — incremental checkers driven one operation at
  a time (the rolling-mode hot path), reported as p50/p95/max microseconds;
  this is the latency budget a live audit adds to each completed operation;
* **window-flush latency** — wall-clock cost of closing one window in the
  streaming engine (rolling and windowed modes): how long the operator waits
  between an operation arriving and its window's verdict block appearing.

All final verdicts are cross-checked against the batch engine, so the
benchmark doubles as a parity test.  Use ``--json PATH`` to record the
numbers; the committed baseline lives in
``benchmarks/results/bench_online_latency.json`` so future PRs can track the
trajectory.

``--check`` turns the run into a regression gate (the online counterpart of
``bench_columnar.py --check``): verdict parity must hold (always asserted),
and the price of online verdicts must stay bounded — the per-op incremental
feed and the peek-mode streaming run may not exceed ``--check-max-slowdown``
times the batch engine's total (a machine-independent *ratio*, so it is safe
on noisy CI runners; the recorded baseline sits near 3-4x).

Run with::

    PYTHONPATH=src python benchmarks/bench_online_latency.py [--registers N]
        [--ops N] [--k K] [--window W] [--repeat R] [--json PATH]
        [--check [--check-max-slowdown X]]
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.algorithms.online import checker_for
from repro.analysis.report import format_table
from repro.core.windows import WindowPolicy
from repro.engine import Engine, StreamingEngine
from repro.workloads.synthetic import synthetic_trace


def completion_order(trace):
    return sorted(
        (op for key in trace.keys() for op in trace[key].operations),
        key=lambda op: (op.finish, op.op_id),
    )


def timed(fn, repeat):
    """Run ``fn`` ``repeat`` times; return (best seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def bench_per_op_feed(ops, k):
    """Feed every operation through per-register checkers, timing each feed."""
    checkers = {}
    costs_us = []
    t_total = time.perf_counter()
    for op in ops:
        checker = checkers.get(op.key)
        if checker is None:
            checker = checkers[op.key] = checker_for(k)
        t0 = time.perf_counter()
        checker.feed(op)
        costs_us.append((time.perf_counter() - t0) * 1e6)
    finals = {key: checker.finish() for key, checker in checkers.items()}
    total_s = time.perf_counter() - t_total
    return costs_us, total_s, finals


def bench_streaming(ops, k, *, mode, window, check_per_window=True):
    engine = StreamingEngine(
        window=window, mode=mode, check_per_window=check_per_window
    )
    elapsed, report = timed(
        lambda: engine.verify_stream(ops, k), 1
    )
    flush_ms = [w.stats.elapsed_s * 1e3 for w in report.timeline]
    return elapsed, flush_ms, report


def run(num_registers=64, ops_per_register=300, k=2, window_size=256, repeat=3,
        seed=0, json_path=None, check=False, check_max_slowdown=15.0,
        out=sys.stdout):
    rng = random.Random(seed)
    trace = synthetic_trace(
        rng,
        num_registers,
        ops_per_register,
        staleness_probability=0.05,
        max_staleness=1,
        size_skew=1.0,
    )
    ops = completion_order(trace)
    print(
        f"online-latency benchmark: {len(trace)} registers, {len(ops)} ops, "
        f"k={k}, window=count({window_size})",
        file=out,
    )

    batch_s, batch_report = timed(lambda: Engine().verify_trace(trace, k), repeat)
    batch_verdicts = {key: bool(r) for key, r in batch_report.results.items()}

    feed_costs_us, feed_total_s, feed_finals = bench_per_op_feed(ops, k)
    assert {key: bool(r) for key, r in feed_finals.items()} == batch_verdicts, (
        "incremental finals diverge from batch"
    )

    window = WindowPolicy.count(window_size)
    rolling_s, rolling_flush_ms, rolling_report = bench_streaming(
        ops, k, mode="rolling", window=window
    )
    assert {k_: bool(r) for k_, r in rolling_report.results.items()} == batch_verdicts
    peek_s, peek_flush_ms, peek_report = bench_streaming(
        ops, k, mode="rolling", window=window, check_per_window=False
    )
    assert {k_: bool(r) for k_, r in peek_report.results.items()} == batch_verdicts
    windowed_s, windowed_flush_ms, _ = bench_streaming(
        ops, k, mode="windowed", window=window
    )

    rows = [
        ["batch engine (serial)", f"{batch_s:.3f}", "-", "-", "-"],
        [
            "per-op incremental feed",
            f"{feed_total_s:.3f}",
            f"{percentile(feed_costs_us, 0.50):.1f}",
            f"{percentile(feed_costs_us, 0.95):.1f}",
            f"{max(feed_costs_us):.0f}",
        ],
        [
            "streaming rolling (exact windows)",
            f"{rolling_s:.3f}",
            "-",
            "-",
            "-",
        ],
        [
            "streaming rolling (peek windows)",
            f"{peek_s:.3f}",
            "-",
            "-",
            "-",
        ],
        [
            "streaming windowed",
            f"{windowed_s:.3f}",
            "-",
            "-",
            "-",
        ],
    ]
    print("", file=out)
    print(
        format_table(
            ["path", "total (s)", "p50 op (µs)", "p95 op (µs)", "max op (µs)"],
            rows,
        ),
        file=out,
    )
    print("", file=out)
    print(
        format_table(
            ["mode", "windows", "mean flush (ms)", "max flush (ms)"],
            [
                [
                    "rolling (exact windows)",
                    len(rolling_flush_ms),
                    f"{statistics.fmean(rolling_flush_ms):.2f}",
                    f"{max(rolling_flush_ms):.2f}",
                ],
                [
                    "rolling (peek windows)",
                    len(peek_flush_ms),
                    f"{statistics.fmean(peek_flush_ms):.2f}",
                    f"{max(peek_flush_ms):.2f}",
                ],
                [
                    "windowed",
                    len(windowed_flush_ms),
                    f"{statistics.fmean(windowed_flush_ms):.2f}",
                    f"{max(windowed_flush_ms):.2f}",
                ],
            ],
        ),
        file=out,
    )
    slowdown = feed_total_s / batch_s if batch_s > 0 else float("inf")
    print(
        f"\nincremental total / batch total = {slowdown:.2f}x "
        f"(the price of having verdicts during the stream)",
        file=out,
    )

    record = {
        "config": {
            "registers": num_registers,
            "ops_per_register": ops_per_register,
            "total_ops": len(ops),
            "k": k,
            "window": window_size,
            "seed": seed,
            "repeat": repeat,
        },
        "batch_s": round(batch_s, 6),
        "per_op_feed": {
            "total_s": round(feed_total_s, 6),
            "p50_us": round(percentile(feed_costs_us, 0.50), 2),
            "p95_us": round(percentile(feed_costs_us, 0.95), 2),
            "max_us": round(max(feed_costs_us), 1),
        },
        "rolling": {
            "total_s": round(rolling_s, 6),
            "windows": len(rolling_flush_ms),
            "mean_flush_ms": round(statistics.fmean(rolling_flush_ms), 4),
            "max_flush_ms": round(max(rolling_flush_ms), 4),
        },
        "rolling_peek": {
            "total_s": round(peek_s, 6),
            "windows": len(peek_flush_ms),
            "mean_flush_ms": round(statistics.fmean(peek_flush_ms), 4),
            "max_flush_ms": round(max(peek_flush_ms), 4),
        },
        "windowed": {
            "total_s": round(windowed_s, 6),
            "windows": len(windowed_flush_ms),
            "mean_flush_ms": round(statistics.fmean(windowed_flush_ms), 4),
            "max_flush_ms": round(max(windowed_flush_ms), 4),
        },
    }
    if json_path:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(json.dumps(record, indent=2) + "\n")
        print(f"recorded results in {json_path}", file=out)

    status = 0
    if check:
        failures = []
        peek_slowdown = peek_s / batch_s if batch_s > 0 else float("inf")
        if slowdown > check_max_slowdown:
            failures.append(
                f"per-op incremental feed is {slowdown:.2f}x batch, above the "
                f"allowed {check_max_slowdown:.2f}x"
            )
        if peek_slowdown > check_max_slowdown:
            failures.append(
                f"peek-mode streaming is {peek_slowdown:.2f}x batch, above the "
                f"allowed {check_max_slowdown:.2f}x"
            )
        print("", file=out)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=out)
            status = 1
        else:
            print(
                f"CHECK OK: online/batch parity held; per-op feed {slowdown:.2f}x "
                f"and peek streaming {peek_slowdown:.2f}x batch "
                f"(allowed {check_max_slowdown:.2f}x)",
                file=out,
            )
    return record, status


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--registers", type=int, default=64)
    parser.add_argument("--ops", type=int, default=300, help="operations per register")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--window", type=int, default=256)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, help="record results to this JSON path")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when online/batch parity breaks or the online "
        "overhead ratios exceed --check-max-slowdown",
    )
    parser.add_argument(
        "--check-max-slowdown",
        type=float,
        default=15.0,
        dest="check_max_slowdown",
        help="largest allowed online-total / batch-total ratio in --check "
        "mode (default 15.0; the recorded baseline is ~3-4x)",
    )
    args = parser.parse_args(argv)
    _, status = run(
        num_registers=args.registers,
        ops_per_register=args.ops,
        k=args.k,
        window_size=args.window,
        repeat=args.repeat,
        seed=args.seed,
        json_path=args.json,
        check=args.check,
        check_max_slowdown=args.check_max_slowdown,
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
