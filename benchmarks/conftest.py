"""Shared fixtures for the benchmark harness.

History generation is excluded from the timed sections: fixtures build (and
cache) the inputs once per parameterisation, so the benchmarks time only the
verification algorithms themselves.
"""

from __future__ import annotations

import random
from functools import lru_cache

import pytest

from repro.core.preprocess import normalize
from repro.workloads.adversarial import concurrent_batch_history, high_concurrency_history
from repro.workloads.synthetic import exactly_k_atomic_history, practical_history


@lru_cache(maxsize=None)
def practical(n: int, staleness: float = 0.05, clients: int = 8, seed: int = 1):
    """A cached, normalised practical (low write concurrency) history."""
    rng = random.Random(seed)
    history = practical_history(
        rng,
        n,
        num_clients=clients,
        write_ratio=0.2,
        staleness_probability=staleness,
        max_staleness=1,
    )
    return normalize(history)


@lru_cache(maxsize=None)
def batched(num_batches: int, batch_size: int):
    """A cached concurrent-batch history (2-atomic, concurrency = batch_size)."""
    return concurrent_batch_history(num_batches, batch_size)


@lru_cache(maxsize=None)
def adversarial(n: int, fraction: float = 0.25):
    """A cached history whose write concurrency grows linearly with its size."""
    return high_concurrency_history(n, concurrency_fraction=fraction)


@lru_cache(maxsize=None)
def exactly_k(k: int, writes: int):
    """A cached serial history whose minimal staleness bound is exactly k."""
    return exactly_k_atomic_history(k, writes)
