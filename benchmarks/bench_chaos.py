"""Resilience benchmark: audit-stream cost and recovery under injected faults.

The chaos layer's headline invariant is qualitative — under any fault
schedule the completed verdict stream matches the fault-free run.  This
benchmark quantifies what the recovery costs:

* **chaos overhead** — wall-clock of a :class:`ResilientAuditClient`
  streaming one trace through a :class:`ChaosProxy` at increasing fault
  rates, relative to the fault-free baseline over the same trace;
* **recovery effort** — reconnects, retries, replayed operations, and
  injected-fault counts per rate;
* **parity gate** (always asserted) — final per-register results and the
  deduplicated window-frame stream must match the baseline structurally,
  witnesses included, at every fault rate.

Fault schedules derive from ``--seed``, so a failing run reproduces exactly.

Run with::

    PYTHONPATH=src python benchmarks/bench_chaos.py
        [--ops N] [--rates 0,0.01,0.05] [--seed S] [--tier auto]
        [--json PATH] [--check]

``--tier`` runs every session — baseline and chaotic alike — under an
adaptive verification tier, so the parity gate also proves the tiered
window stream deduplicates identically under faults.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.analysis.report import format_table
from repro.chaos import FaultPlan
from repro.service import (
    AuditClient,
    AuditServer,
    ChaosProxy,
    ResilientAuditClient,
    RetryPolicy,
)
from repro.workloads.synthetic import practical_history


def result_signature(result):
    """Structural identity of one verdict (op ids are connection-local)."""
    return (
        bool(result),
        result.k,
        result.algorithm,
        result.reason,
        tuple(
            (op.op_type.value, op.value, op.start, op.finish)
            for op in (result.witness or ())
        ),
    )


def window_signature(frame):
    return {k: v for k, v in frame.items() if k != "session"}


def fault_plan(seed: int, rate: float) -> FaultPlan:
    """Drops, corruption, delay and duplication, all scaled by one rate."""
    return (
        FaultPlan(name=f"bench-rate-{rate}", seed=seed)
        .add("frame_drop", probability=rate)
        .add("frame_corrupt", probability=rate / 2)
        .add("frame_delay", probability=min(1.0, rate * 4), delay_ms=1)
        .add("frame_duplicate", probability=rate)
    )


async def baseline_run(ops, tmp_dir, state_backend="json", tier=None):
    server = AuditServer(
        port=0, checkpoint_dir=tmp_dir / "baseline", state_backend=state_backend
    )
    await server.start()
    try:
        windows = []
        t0 = time.perf_counter()
        client = await AuditClient.connect(
            server.addresses[0], session="baseline", k=2, window=50,
            witness=True, tier=tier, on_window=windows.append,
        )
        await client.feed_ops(ops)
        report = await client.finish()
        return report, windows, time.perf_counter() - t0
    finally:
        await server.stop()


async def chaos_run(ops, plan, tmp_dir, state_backend="json", tier=None):
    server = AuditServer(
        port=0, checkpoint_dir=tmp_dir / plan.name, state_backend=state_backend
    )
    await server.start()
    try:
        async with ChaosProxy(server.addresses[0], plan) as proxy:
            t0 = time.perf_counter()
            client = ResilientAuditClient(
                proxy.address, session="chaotic", k=2, window=50,
                witness=True, tier=tier, seed=plan.seed, checkpoint_every=25,
                policy=RetryPolicy(
                    max_attempts=12, base_delay_s=0.02, io_timeout_s=10.0
                ),
            )
            await client.feed_ops(ops)
            report = await client.finish()
            elapsed = time.perf_counter() - t0
            return report, client, dict(proxy.counts), elapsed
    finally:
        await server.stop()


def assert_parity(base_report, base_windows, report, windows, rate):
    base_sig = {k: result_signature(v) for k, v in base_report.results.items()}
    sig = {k: result_signature(v) for k, v in report.results.items()}
    assert sig == base_sig, f"verdict stream diverged at fault rate {rate}"
    assert [window_signature(w) for w in windows] == [
        window_signature(w) for w in base_windows
    ], f"window stream diverged at fault rate {rate}"


def run_bench(args, tmp_dir):
    ops = practical_history(
        random.Random(args.seed), args.ops, num_clients=8
    ).operations
    base_report, base_windows, base_elapsed = asyncio.run(
        baseline_run(ops, tmp_dir, args.state_backend, args.tier)
    )
    rows = [
        {
            "rate": 0.0,
            "elapsed_s": base_elapsed,
            "ops_per_s": len(ops) / base_elapsed,
            "overhead": 1.0,
            "reconnects": 0,
            "retries": 0,
            "faults": 0,
        }
    ]
    for rate in args.rates:
        if rate <= 0:
            continue
        plan = fault_plan(args.seed, rate)
        report, client, counts, elapsed = asyncio.run(
            chaos_run(ops, plan, tmp_dir, args.state_backend, args.tier)
        )
        assert_parity(base_report, base_windows, report, client.windows, rate)
        rows.append(
            {
                "rate": rate,
                "elapsed_s": elapsed,
                "ops_per_s": len(ops) / elapsed,
                "overhead": elapsed / base_elapsed,
                "reconnects": client.reconnects,
                "retries": client.retries,
                "faults": sum(counts.values()),
            }
        )
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=1500)
    parser.add_argument(
        "--rates",
        type=lambda s: [float(x) for x in s.split(",")],
        default=[0.005, 0.02],
        help="comma-separated frame-fault rates to sweep",
    )
    parser.add_argument("--seed", type=int, default=0xC0FFEE)
    parser.add_argument(
        "--state-backend",
        default="json",
        dest="state_backend",
        help="checkpoint state-store backend the servers run on "
        "(json, sqlite, segments)",
    )
    parser.add_argument(
        "--tier",
        choices=("exact", "screen", "auto"),
        default=None,
        help="run every session (baseline and chaotic alike) under this "
        "adaptive verification tier — parity then also covers the tiered "
        "window stream under faults",
    )
    parser.add_argument("--json", type=Path, default=None)
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression gate: parity (always on) plus a recovery bound — "
        "the highest swept rate must still complete within --check-max-overhead",
    )
    parser.add_argument("--check-max-overhead", type=float, default=50.0)
    args = parser.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
        rows = run_bench(args, Path(tmp))

    print(f"bench_chaos: {args.ops} ops, seed {args.seed}")
    print(
        format_table(
            ["rate", "elapsed_s", "ops_per_s", "overhead",
             "reconnects", "retries", "faults"],
            [
                [
                    f"{row['rate']:g}",
                    f"{row['elapsed_s']:.3f}",
                    f"{row['ops_per_s']:.0f}",
                    f"{row['overhead']:.2f}x",
                    row["reconnects"],
                    row["retries"],
                    row["faults"],
                ]
                for row in rows
            ],
        )
    )
    print("parity: OK at every rate (witnesses included)")

    if args.json:
        args.json.write_text(
            json.dumps({"ops": args.ops, "seed": args.seed, "rows": rows}, indent=2)
        )
        print(f"wrote {args.json}")

    if args.check:
        worst = max(rows, key=lambda row: row["rate"])
        if worst["overhead"] > args.check_max_overhead:
            print(
                f"CHECK FAILED: overhead {worst['overhead']:.1f}x at rate "
                f"{worst['rate']:g} exceeds {args.check_max_overhead:.1f}x"
            )
            return 1
        print(
            f"check: OK (overhead {worst['overhead']:.1f}x at rate "
            f"{worst['rate']:g} within {args.check_max_overhead:.1f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
