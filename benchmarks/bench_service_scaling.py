"""Audit-service fleet scaling: worker-pool throughput and verdict latency.

The audit service multiplexes every session onto one event loop; with
``--workers N`` its checker CPU moves onto a pool of N processes behind
consistent-hash shard routing.  This benchmark measures what that buys under
a concurrent fleet of sessions:

* **sustained throughput** — an asyncio load generator drives many concurrent
  sessions (hundreds of registers in aggregate) against a server subprocess
  and reports sustained operations/second across the whole fleet;
* **window-verdict latency** — for every closed window, the time from the
  client sending the window-closing operation to the ``window`` verdict frame
  arriving back, reported as p50/p99 milliseconds;
* **scaling efficiency** — throughput at 1/2/4 workers relative to the
  single-process server (``workers = 0``), i.e. how much of the ideal N-times
  speedup the shard routing and IPC actually deliver.

One session per run streams with ``witness=True`` and its final report is
compared against a local batch verification — reason- and witness-exact — so
the benchmark doubles as an end-to-end parity test for the pooled path.

The server runs as a **separate process** (spawned via ``repro serve``), so
load generation never shares a Python interpreter — or a GIL — with the
event loop being measured.

``--check`` turns the run into a regression gate: parity must hold (always
asserted), a 1-worker pool must keep at least ``--check-min-pool-ratio`` of
the single-process throughput (the IPC overhead bound), and — **only when the
machine has enough cores to make the comparison meaningful** — the 2-worker
speedup must reach ``--check-min-speedup2`` (4-worker: ``--check-min-speedup4``).
Core-gated checks report SKIPPED instead of failing on small machines; the
recorded baseline carries ``cpu_count`` so numbers are never compared across
incomparable hardware.  The committed baseline lives in
``benchmarks/results/bench_service_scaling.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_service_scaling.py
        [--sessions N] [--registers N] [--ops N] [--window W]
        [--workers 0,1,2,4] [--json PATH] [--check]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.analysis.report import format_table
from repro.core.api import verify_trace
from repro.service.client import AuditClient
from repro.workloads.synthetic import synthetic_trace

_SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def make_fleet(seed, sessions, registers, ops_per_register):
    """One synthetic trace + completion-ordered stream per session."""
    fleet = []
    for index in range(sessions):
        rng = random.Random(seed + index)
        trace = synthetic_trace(
            rng,
            registers,
            ops_per_register,
            staleness_probability=0.05,
            max_staleness=1,
        )
        stream = sorted(
            (op for key in trace.keys() for op in trace[key].operations),
            key=lambda op: (op.finish, op.op_id),
        )
        fleet.append((trace, stream))
    return fleet


class ServerProcess:
    """A ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, workers, algorithm="lbt"):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(_SRC_DIR), env.get("PYTHONPATH")])
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", str(workers),
                "--algorithm", algorithm,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        banner = self.proc.stdout.readline()
        if "listening on" not in banner:
            rest = self.proc.stdout.read()
            self.proc.kill()
            raise RuntimeError(f"server failed to start: {banner!r} {rest!r}")
        self.address = banner.strip().rsplit(" ", 1)[-1]

    def stop(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


async def drive_session(address, index, stream, window_size, latencies,
                        witness=False):
    """Stream one session; returns its RemoteReport.

    Window-verdict latency: the send timestamp of every window-closing
    operation (each ``window_size``-th) is recorded, and the matching
    ``window`` frame's arrival completes the sample.
    """
    sent_at = {}

    def on_window(frame):
        t_sent = sent_at.pop(frame["index"], None)
        if t_sent is not None:
            latencies.append((time.perf_counter() - t_sent) * 1e3)

    client = await AuditClient.connect(
        address, session=f"bench-{index}", k=2, algorithm="lbt",
        window=window_size, witness=witness, on_window=on_window,
    )
    for position, op in enumerate(stream, start=1):
        if position % window_size == 0:
            sent_at[position // window_size - 1] = time.perf_counter()
        await client.feed(op)
    return await client.finish()


async def run_fleet(address, fleet, window_size, *, witness_session=None):
    latencies = []
    t0 = time.perf_counter()
    reports = await asyncio.gather(
        *(
            drive_session(
                address, index, stream, window_size, latencies,
                witness=(index == witness_session),
            )
            for index, (_trace, stream) in enumerate(fleet)
        )
    )
    elapsed = time.perf_counter() - t0
    return reports, elapsed, latencies


def result_signature(result, witness=True):
    order = None
    if witness and result.witness is not None:
        order = tuple(
            (op.op_type.value, op.value, op.start, op.finish)
            for op in result.witness
        )
    return (bool(result), result.k, result.algorithm, result.reason, order)


def check_parity(report, trace):
    expected = verify_trace(trace, 2, algorithm="lbt")
    assert set(report.results) == set(expected), "register sets diverge"
    for key, want in expected.items():
        got = report.results[key]
        assert result_signature(got) == result_signature(want), (
            f"pooled verdict for register {key!r} diverges from batch"
        )


def bench_config(workers, fleet, window_size, *, parity=False):
    server = ServerProcess(workers)
    try:
        witness_session = 0 if parity else None
        reports, elapsed, latencies = asyncio.run(
            run_fleet(
                server.address, fleet, window_size,
                witness_session=witness_session,
            )
        )
    finally:
        server.stop()
    if parity:
        check_parity(reports[0], fleet[0][0])
    total_ops = sum(report.ops for report in reports)
    return {
        "workers": workers,
        "sessions": len(fleet),
        "ops": total_ops,
        "elapsed_s": round(elapsed, 4),
        "ops_per_s": round(total_ops / elapsed, 1),
        "window_latency_p50_ms": round(percentile(latencies, 0.50), 3),
        "window_latency_p99_ms": round(percentile(latencies, 0.99), 3),
        "windows_sampled": len(latencies),
    }


def run(sessions=8, registers=4, ops_per_register=150, window_size=32,
        worker_counts=(0, 1, 2, 4), seed=0, json_path=None, check=False,
        check_min_pool_ratio=0.5, check_min_speedup2=1.6,
        check_min_speedup4=3.0, out=sys.stdout):
    cpu_count = os.cpu_count() or 1
    fleet = make_fleet(seed, sessions, registers, ops_per_register)
    total_ops = sum(len(stream) for _trace, stream in fleet)
    print(
        f"service-scaling benchmark: {sessions} concurrent sessions, "
        f"{registers} registers x {ops_per_register} ops each "
        f"({total_ops} ops total), window=count({window_size}), "
        f"{cpu_count} cpus",
        file=out,
    )

    results = []
    for workers in worker_counts:
        # Parity is checked on the largest pool: the config where routing,
        # the batch codec, and verdict merging all matter most.
        parity = workers == max(worker_counts)
        results.append(bench_config(workers, fleet, window_size, parity=parity))
        label = "in-process" if workers == 0 else f"{workers} workers"
        print(f"  measured {label}: {results[-1]['ops_per_s']:,.0f} ops/s", file=out)

    base = next((r for r in results if r["workers"] == 0), results[0])
    for record in results:
        record["speedup"] = round(record["ops_per_s"] / base["ops_per_s"], 3)
        record["efficiency"] = (
            round(record["speedup"] / record["workers"], 3)
            if record["workers"] else 1.0
        )

    print("", file=out)
    print(
        format_table(
            ["config", "ops/s", "speedup", "efficiency",
             "p50 window (ms)", "p99 window (ms)"],
            [
                [
                    "in-process" if r["workers"] == 0 else f"{r['workers']} workers",
                    f"{r['ops_per_s']:,.0f}",
                    f"{r['speedup']:.2f}x",
                    f"{r['efficiency']:.2f}",
                    f"{r['window_latency_p50_ms']:.2f}",
                    f"{r['window_latency_p99_ms']:.2f}",
                ]
                for r in results
            ],
        ),
        file=out,
    )
    print("\nverdict parity (reasons and witnesses) held on the largest pool", file=out)

    record = {
        "config": {
            "sessions": sessions,
            "registers_per_session": registers,
            "ops_per_register": ops_per_register,
            "total_ops": total_ops,
            "window": window_size,
            "seed": seed,
            "worker_counts": list(worker_counts),
        },
        "cpu_count": cpu_count,
        "results": results,
    }
    if json_path:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(json.dumps(record, indent=2) + "\n")
        print(f"recorded results in {json_path}", file=out)

    status = 0
    if check:
        failures = []
        skipped = []
        by_workers = {r["workers"]: r for r in results}
        pool1 = by_workers.get(1)
        if pool1 is not None:
            ratio = pool1["ops_per_s"] / base["ops_per_s"]
            if ratio < check_min_pool_ratio:
                failures.append(
                    f"1-worker pool keeps only {ratio:.2f}x of single-process "
                    f"throughput (IPC overhead bound is {check_min_pool_ratio:.2f}x)"
                )
        # Scaling gates only make sense with cores for the workers *plus*
        # the server loop and the load generator; on smaller machines the
        # processes time-slice one core and "speedup" measures the scheduler.
        for workers, minimum, needed in (
            (2, check_min_speedup2, 4),
            (4, check_min_speedup4, 6),
        ):
            entry = by_workers.get(workers)
            if entry is None:
                continue
            if cpu_count < needed:
                skipped.append(
                    f"{workers}-worker speedup gate (needs >= {needed} cpus, "
                    f"have {cpu_count})"
                )
                continue
            if entry["speedup"] < minimum:
                failures.append(
                    f"{workers}-worker speedup is {entry['speedup']:.2f}x, "
                    f"below the required {minimum:.2f}x"
                )
        print("", file=out)
        for entry in skipped:
            print(f"CHECK SKIPPED: {entry}", file=out)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=out)
            status = 1
        else:
            print(
                "CHECK OK: pooled/batch verdict parity held"
                + (
                    f"; 1-worker pool keeps {pool1['ops_per_s'] / base['ops_per_s']:.2f}x "
                    f"of single-process throughput"
                    if pool1 is not None
                    else ""
                ),
                file=out,
            )
    return record, status


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=8,
                        help="concurrent audit sessions in the fleet")
    parser.add_argument("--registers", type=int, default=4,
                        help="registers per session")
    parser.add_argument("--ops", type=int, default=150,
                        help="operations per register per session")
    parser.add_argument("--window", type=int, default=32)
    parser.add_argument(
        "--workers", default="0,1,2,4",
        help="comma-separated worker counts to measure (0 = in-process)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, help="record results to this JSON path")
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) on parity breaks, pool-overhead regressions, or "
        "(given enough cpus) insufficient multi-worker speedup",
    )
    parser.add_argument("--check-min-pool-ratio", type=float, default=0.5,
                        dest="check_min_pool_ratio")
    parser.add_argument("--check-min-speedup2", type=float, default=1.6,
                        dest="check_min_speedup2")
    parser.add_argument("--check-min-speedup4", type=float, default=3.0,
                        dest="check_min_speedup4")
    args = parser.parse_args(argv)
    worker_counts = tuple(int(part) for part in args.workers.split(","))
    _, status = run(
        sessions=args.sessions,
        registers=args.registers,
        ops_per_register=args.ops,
        window_size=args.window,
        worker_counts=worker_counts,
        seed=args.seed,
        json_path=args.json,
        check=args.check,
        check_min_pool_ratio=args.check_min_pool_ratio,
        check_min_speedup2=args.check_min_speedup2,
        check_min_speedup4=args.check_min_speedup4,
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
