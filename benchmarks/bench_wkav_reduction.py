"""Experiment E7: the weighted k-AV problem is as hard as bin packing (Thm 5.1).

Three measurements around the Figure 5 construction:

* building the reduction itself is cheap (linear in the instance size);
* deciding the reduced weighted-k-AV instance with the exact solver exhibits
  the exponential growth expected of an NP-complete problem as the number of
  long writes (bin-packing items) grows;
* the source bin-packing instances, solved directly, grow the same way —
  the reduction preserves both the answer and the difficulty.

Every timed verification is asserted against the bin-packing ground truth, so
the benchmark doubles as an equivalence check.
"""

import random

import pytest

from repro.algorithms.wkav import verify_weighted_k_atomic
from repro.binpacking.model import BinPackingInstance
from repro.binpacking.reduction import reduce_to_wkav
from repro.binpacking.solver import is_feasible, solve_exact


def tight_instance(num_items: int, *, feasible: bool) -> BinPackingInstance:
    """A deterministic, tight instance of the requested difficulty.

    The feasible variant is built bin-by-bin from groups that fill the
    capacity exactly, then shuffled, so a packing exists by construction but
    the bins have no slack.  The infeasible variant uses items of size 4 with
    capacity 6 and one bin fewer than the item count: the volume bound is
    satisfied (so the trivial filter does not fire) yet no two items share a
    bin, so every search must fail exhaustively.
    """
    capacity = 6
    rng = random.Random(num_items)
    if feasible:
        groups = [(2, 4), (3, 3), (2, 2, 2), (6,), (1, 5)]
        sizes = []
        num_bins = 0
        while len(sizes) < num_items:
            group = groups[rng.randrange(len(groups))]
            sizes.extend(group)
            num_bins += 1
        rng.shuffle(sizes)
        return BinPackingInstance(tuple(sizes), capacity, num_bins)
    count = max(3, num_items)
    sizes = [4] * count
    return BinPackingInstance(tuple(sizes), capacity, count - 1)


ITEM_COUNTS = [4, 6, 8, 10]


@pytest.mark.parametrize("num_items", ITEM_COUNTS)
def test_reduction_construction_cost(benchmark, num_items):
    """Building the Figure 5 history is linear in the instance size."""
    instance = tight_instance(num_items, feasible=True)
    reduced = benchmark(reduce_to_wkav, instance)
    benchmark.extra_info["history_operations"] = len(reduced.history)
    benchmark.extra_info["k"] = reduced.k


@pytest.mark.parametrize("num_items", ITEM_COUNTS)
def test_wkav_exact_on_feasible_instances(benchmark, num_items):
    """Exact weighted k-AV on reductions of feasible bin-packing instances."""
    instance = tight_instance(num_items, feasible=True)
    reduced = reduce_to_wkav(instance)
    result = benchmark(verify_weighted_k_atomic, reduced.history, reduced.k)
    assert bool(result) == is_feasible(instance)
    benchmark.extra_info["items"] = num_items
    benchmark.extra_info["feasible"] = bool(result)


@pytest.mark.parametrize("num_items", ITEM_COUNTS[:3])
def test_wkav_exact_on_infeasible_instances(benchmark, num_items):
    """Exact weighted k-AV where the answer is NO (full search required)."""
    instance = tight_instance(num_items, feasible=False)
    reduced = reduce_to_wkav(instance)
    result = benchmark(verify_weighted_k_atomic, reduced.history, reduced.k)
    assert bool(result) == is_feasible(instance)
    benchmark.extra_info["items"] = instance.num_items
    benchmark.extra_info["feasible"] = bool(result)


@pytest.mark.parametrize("num_items", ITEM_COUNTS)
def test_binpacking_exact_solver(benchmark, num_items):
    """The source problem solved directly, for difficulty comparison."""
    instance = tight_instance(num_items, feasible=True)
    packing = benchmark(solve_exact, instance)
    assert packing is not None
    benchmark.extra_info["items"] = num_items
