"""Experiment E9: the consistency "tuning knob" sweep.

The introduction motivates k-AV as the tool that tells an operator how far a
consistency knob (here: the read-quorum size on a 5-replica register) can be
relaxed.  For each knob position the simulator records a history (untimed);
the benchmark times the per-register minimal-k style audit and records both
the observed consistency band and the mean operation latency, i.e. the two
axes of the trade-off the paper describes.
"""

from functools import lru_cache

import pytest

from repro.analysis.metrics import staleness_stats
from repro.analysis.spectrum import staleness_bucket
from repro.simulation import ExponentialLatency, QuorumConfig, SloppyQuorumStore, StoreConfig
from repro.workloads import SingleKey, WorkloadSpec

NUM_REPLICAS = 5
WRITE_QUORUM = 2
READ_QUORUMS = [1, 2, 3, 4, 5]


@lru_cache(maxsize=None)
def history_for_read_quorum(read_quorum):
    config = StoreConfig(
        quorum=QuorumConfig(
            num_replicas=NUM_REPLICAS,
            read_quorum=read_quorum,
            write_quorum=WRITE_QUORUM,
        ),
        latency=ExponentialLatency(mean_ms=4.0),
    )
    workload = WorkloadSpec(
        num_clients=12,
        operations_per_client=50,
        write_ratio=0.4,
        key_selector=SingleKey(),
        mean_think_time_ms=2.0,
        seed=23,
    )
    result = SloppyQuorumStore(config, seed=23).run(workload)
    return result.history["key-00000"]


@pytest.mark.parametrize("read_quorum", READ_QUORUMS)
def test_staleness_bucket_per_knob_position(benchmark, read_quorum):
    """Time the bucket classification; record the trade-off it reveals."""
    history = history_for_read_quorum(read_quorum)
    bucket, minimal = benchmark(staleness_bucket, history)
    durations = [op.finish - op.start for op in history.operations]
    stats = staleness_stats(history)
    benchmark.extra_info["read_quorum"] = read_quorum
    benchmark.extra_info["strict"] = read_quorum + WRITE_QUORUM > NUM_REPLICAS
    benchmark.extra_info["bucket"] = bucket.value
    benchmark.extra_info["minimal_k"] = minimal
    benchmark.extra_info["mean_latency_ms"] = round(sum(durations) / len(durations), 3)
    benchmark.extra_info["stale_read_fraction"] = round(stats.stale_fraction, 3)
    if read_quorum + WRITE_QUORUM > NUM_REPLICAS:
        assert bucket.value == "k=1", "strict knob positions must be linearizable"
