"""Experiment E6 (part 2): LBT vs FZF head-to-head in the adversarial regime.

With write concurrency proportional to the history size (``c = n/4``), LBT's
``O(c·n)`` term becomes quadratic while FZF stays quasilinear — the crossover
the paper's Sections III-C and IV-C predict.  The Gibbons–Korach 1-AV checker
and the zone-only partial checker are included as baselines: they are faster
but answer a weaker (GK) or incomplete (zone-only) question.
"""

import pytest

from repro.algorithms.fzf import verify_2atomic_fzf
from repro.algorithms.gk import verify_1atomic
from repro.algorithms.gls import verify_2atomic_zones_only
from repro.algorithms.lbt import verify_2atomic

from conftest import adversarial

SIZES = [512, 1024, 2048, 4096]


@pytest.mark.parametrize("n", SIZES)
def test_lbt_adversarial(benchmark, n):
    """LBT with c = n/4 concurrent writes: the quadratic regime."""
    history = adversarial(n)
    result = benchmark(verify_2atomic, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["max_concurrent_writes"] = history.max_concurrent_writes()


@pytest.mark.parametrize("n", SIZES)
def test_fzf_adversarial(benchmark, n):
    """FZF on the same inputs: should scale quasilinearly."""
    history = adversarial(n)
    result = benchmark(verify_2atomic_fzf, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["max_concurrent_writes"] = history.max_concurrent_writes()


@pytest.mark.parametrize("n", [1024, 4096])
def test_gk_baseline_adversarial(benchmark, n):
    """Baseline: the 1-AV zone conditions on the same inputs."""
    history = adversarial(n)
    benchmark(verify_1atomic, history)
    benchmark.extra_info["operations"] = len(history)


@pytest.mark.parametrize("n", [1024, 4096])
def test_zone_only_baseline_adversarial(benchmark, n):
    """Baseline: the pre-paper zone-only partial checker (may answer UNKNOWN)."""
    history = adversarial(n)
    result = benchmark(verify_2atomic_zones_only, history)
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["verdict"] = result.verdict.value
