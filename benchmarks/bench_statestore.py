"""State-store backends: checkpoint latency and eviction-bounded memory.

The state tier (:mod:`repro.state`) carries three kinds of hot data —
session checkpoints, the worker pool's failover journal, and spilled window
timelines — behind one ``(namespace, key) -> bytes`` interface with three
backends: fsync-ed file-per-key ``json``, WAL-mode ``sqlite``, and
log-structured ``segments``.  This benchmark measures what each costs and
what segment eviction buys:

* **latency section** — per-backend checkpoint ``save`` (durable put:
  fsync / WAL commit / segment append) and ``load`` + session resume,
  over a realistic mid-stream :class:`AuditSession` payload;
* **retention arms** — a long window stream driven through
  :class:`StreamSession` twice in separate subprocesses: *retain-all*
  keeps every closed :class:`WindowReport` in memory (the pre-1.8
  behaviour), *evict* bounds the hot set with
  ``StreamingEngine(state_store=segments, retain_windows=N)``.  Each arm
  reports ``ru_maxrss`` and an incremental verdict digest, so the memory
  comparison is honest and the verdict stream provably identical.

Run with::

    PYTHONPATH=src python benchmarks/bench_statestore.py [--ops 40000]
        [--window 8] [--retain 16] [--saves 50] [--json PATH] [--check]

``--check`` fails when the stored checkpoint bytes differ across backends
(the interchange guarantee), when the two retention arms' verdict digests
diverge, when the default (json) backend's durable save exceeds the
``--check-max-save-ms`` ceiling, or — at >= 2000 windows — when the evict
arm's peak RSS is not under ``--check-max-rss-frac`` of retain-all's.  CI
runs a reduced size.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.state import available_backends

SEED = 0xC0FFEE


def make_stream(num_ops, seed):
    """A deterministic multi-register operation stream in completion order."""
    import random

    from repro.workloads.synthetic import synthetic_trace

    trace = synthetic_trace(
        random.Random(seed), 8, max(1, num_ops // 8),
        staleness_probability=0.05, max_staleness=1,
    )
    ops = [op for key in trace.keys() for op in trace[key].operations]
    return sorted(ops, key=lambda op: (op.finish, op.op_id))


def session_payload(ops):
    """A mid-stream checkpoint payload — what the audit server saves."""
    from repro.service.session import AuditSession, SessionConfig

    session = AuditSession.start(
        "bench", SessionConfig(k=2, algorithm="lbt", window_size=16)
    )
    for op in ops[: min(len(ops), 500)]:
        session.feed(op)
    return session.checkpoint_payload()


# ----------------------------------------------------------------------
# Latency section
# ----------------------------------------------------------------------
def bench_latency(backend, payload, saves, directory):
    from repro.service.checkpoint import CheckpointStore

    store = CheckpointStore(directory, backend=backend)
    try:
        t0 = time.perf_counter()
        for i in range(saves):
            store.save("bench", payload)
        save_s = (time.perf_counter() - t0) / saves

        from repro.service.session import AuditSession

        t0 = time.perf_counter()
        for i in range(saves):
            AuditSession.resume(store.load("bench"))
        load_s = (time.perf_counter() - t0) / saves
        raw = store.raw("bench")
    finally:
        store.close()
    return {
        "save_ms": round(save_s * 1e3, 3),
        "load_resume_ms": round(load_s * 1e3, 3),
        "payload_bytes": len(raw),
        "raw": raw,
    }


# ----------------------------------------------------------------------
# Retention arms (invoked via --arm; print a JSON record on stdout)
# ----------------------------------------------------------------------
def run_arm(arm, num_ops, window, retain, state_dir):
    from repro.core.windows import WindowPolicy
    from repro.engine.streaming import StreamingEngine
    from repro.state import open_state_store

    ops = make_stream(num_ops, SEED)
    store = None
    if arm == "evict":
        store = open_state_store("segments", state_dir)
        engine = StreamingEngine(
            window=WindowPolicy.count(window), state_store=store,
            retain_windows=retain,
        )
    else:
        engine = StreamingEngine(window=WindowPolicy.count(window))
    session = engine.open_session(2)
    windows = 0
    digest = 0
    t0 = time.perf_counter()
    for op in ops:
        report = session.feed(op)
        if report is not None:
            windows += 1
            # Incremental digest: verdict booleans in window order.  Both
            # arms must produce the same digest or eviction changed verdicts.
            for key in sorted(report.verdicts, key=repr):
                digest = (digest * 31 + (2 if report.verdicts[key].result else 1)) % (
                    2**61 - 1
                )
    elapsed = time.perf_counter() - t0
    spills = getattr(session._timeline, "spills", 0)
    if store is not None:
        store.close()
    import resource

    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "elapsed_s": round(elapsed, 3),
        "windows": windows,
        "digest": digest,
        "spills": spills,
        "peak_rss_kb": int(peak_kb),
    }


def spawn_arm(arm, num_ops, window, retain, state_dir):
    proc = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()),
            "--arm", arm, "--ops", str(num_ops), "--window", str(window),
            "--retain", str(retain), "--state-dir", str(state_dir),
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{arm} arm failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def run(num_ops, window, retain, saves, json_path, check, check_max_rss_frac,
        check_max_save_ms, out=sys.stdout):
    ops = make_stream(num_ops, SEED)
    payload = session_payload(ops)
    print(
        f"state-store benchmark: {len(ops)} ops, window={window}, "
        f"retain={retain}, {saves} saves per backend",
        file=out,
    )

    latency = {}
    raws = {}
    with tempfile.TemporaryDirectory() as tmp:
        for backend in available_backends():
            rec = bench_latency(backend, payload, saves, Path(tmp) / backend)
            raws[backend] = rec.pop("raw")
            latency[backend] = rec
            print(
                f"  {backend:9s} save {rec['save_ms']:7.3f} ms   "
                f"load+resume {rec['load_resume_ms']:7.3f} ms   "
                f"payload {rec['payload_bytes']} B",
                file=out,
            )
    interchangeable = len(set(raws.values())) == 1

    arms = {}
    with tempfile.TemporaryDirectory() as tmp:
        for arm in ("retain-all", "evict"):
            arms[arm] = spawn_arm(arm, num_ops, window, retain, Path(tmp) / arm)
            rec = arms[arm]
            print(
                f"  {arm:10s} {rec['windows']} windows in {rec['elapsed_s']}s, "
                f"peak RSS {rec['peak_rss_kb'] / 1024:.1f} MB"
                + (f", {rec['spills']} spills" if arm == "evict" else ""),
                file=out,
            )
    rss_frac = arms["evict"]["peak_rss_kb"] / arms["retain-all"]["peak_rss_kb"]
    print(f"  evict peak RSS is {rss_frac:.2f}x retain-all's", file=out)

    record = {
        "config": {
            "ops": len(ops), "window": window, "retain": retain, "saves": saves,
        },
        "latency": latency,
        "interchangeable": interchangeable,
        "retain_all": arms["retain-all"],
        "evict": arms["evict"],
        "rss_fraction": round(rss_frac, 4),
    }
    if json_path:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nrecorded results in {json_path}", file=out)

    if check:
        failures = []
        if not interchangeable:
            failures.append(
                "checkpoint bytes differ across backends: "
                + ", ".join(f"{b}={len(r)}B" for b, r in raws.items())
            )
        if arms["evict"]["digest"] != arms["retain-all"]["digest"]:
            failures.append(
                "verdict digests diverge between retention arms — eviction "
                "changed the verdict stream"
            )
        if arms["evict"]["spills"] == 0:
            failures.append("evict arm never spilled — retention is not engaged")
        json_save = latency["json"]["save_ms"]
        if json_save > check_max_save_ms:
            failures.append(
                f"default (json) backend durable save {json_save:.3f} ms "
                f"exceeds the {check_max_save_ms:.1f} ms ceiling — the "
                "fsync-ed atomic write path has regressed"
            )
        if arms["retain-all"]["windows"] >= 2000 and rss_frac >= check_max_rss_frac:
            failures.append(
                f"evict peak RSS fraction {rss_frac:.2f} is not under "
                f"{check_max_rss_frac:.2f} of retain-all at "
                f"{arms['retain-all']['windows']} windows — eviction is not "
                "bounding memory"
            )
        print("", file=out)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=out)
            return record, 1
        print(
            f"CHECK OK: payloads byte-interchangeable across "
            f"{len(raws)} backends, verdict digests identical, evict peak "
            f"RSS {arms['evict']['peak_rss_kb'] / 1024:.1f} MB "
            f"({rss_frac:.2f}x retain-all)",
            file=out,
        )
    return record, 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=40_000)
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument(
        "--retain", type=int, default=16,
        help="hot windows kept in memory by the evict arm",
    )
    parser.add_argument(
        "--saves", type=int, default=50, help="checkpoint saves per backend"
    )
    parser.add_argument("--json", default=None, help="record results to this JSON path")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on non-interchangeable payloads, diverging "
        "retention arms, or (at >= 2000 windows) unbounded evict-arm RSS",
    )
    parser.add_argument(
        "--check-max-rss-frac",
        type=float,
        default=0.9,
        dest="check_max_rss_frac",
        help="maximum allowed evict/retain-all peak-RSS fraction (default 0.9)",
    )
    parser.add_argument(
        "--check-max-save-ms",
        type=float,
        default=50.0,
        dest="check_max_save_ms",
        help="ceiling on the default (json) backend's mean durable save "
        "latency in milliseconds (default 50)",
    )
    parser.add_argument("--arm", choices=("retain-all", "evict"), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--state-dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.arm:
        print(json.dumps(run_arm(
            args.arm, args.ops, args.window, args.retain, args.state_dir
        )))
        return 0
    _, status = run(
        num_ops=args.ops,
        window=args.window,
        retain=args.retain,
        saves=args.saves,
        json_path=args.json,
        check=args.check,
        check_max_rss_frac=args.check_max_rss_frac,
        check_max_save_ms=args.check_max_save_ms,
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
