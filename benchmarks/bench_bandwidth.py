"""Experiment E10: the graph-bandwidth connection (Section VI ablation).

Section VI relates k-AV to the graph bandwidth problem but notes that the
special-case algorithms for GBW do not transfer.  This bench quantifies the
relationship on concrete inputs: it times exact bandwidth computation on the
cluster graphs of histories whose minimal k is known, and records both
numbers so the divergence (small bandwidth with large k, and vice versa) is
visible in the results table.  It also contrasts the cost of the exponential
bandwidth search with the quasilinear FZF on the same history.
"""

import pytest

from repro.algorithms.fzf import verify_2atomic_fzf
from repro.core.api import minimal_k
from repro.graphtools.bandwidth import cluster_graph, exact_bandwidth
from repro.workloads.synthetic import exactly_k_atomic_history, serial_history

from conftest import exactly_k


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_cluster_graph_bandwidth_vs_minimal_k(benchmark, k):
    """Exact bandwidth of the cluster graph for histories of known minimal k."""
    history = exactly_k(k, 8)
    graph = cluster_graph(history)
    bandwidth = benchmark(exact_bandwidth, graph)
    benchmark.extra_info["minimal_k"] = k if k <= 2 else minimal_k(history, max_exact_ops=60)
    benchmark.extra_info["bandwidth"] = bandwidth
    benchmark.extra_info["nodes"] = graph.number_of_nodes()
    # The headline observation of the ablation: bandwidth does not track k.
    assert bandwidth <= 2


@pytest.mark.parametrize("num_writes", [8, 16, 32])
def test_bandwidth_search_cost_vs_fzf(benchmark, num_writes):
    """The exponential bandwidth search vs quasilinear FZF on one history."""
    history = serial_history(num_writes, reads_per_write=1)
    graph = cluster_graph(history)
    bandwidth = benchmark(exact_bandwidth, graph)
    fzf = verify_2atomic_fzf(history)
    benchmark.extra_info["bandwidth"] = bandwidth
    benchmark.extra_info["fzf_verdict"] = bool(fzf)
    benchmark.extra_info["operations"] = len(history)
