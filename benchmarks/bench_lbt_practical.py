"""Experiments E1/E2: LBT on practical (low write concurrency) histories.

The paper argues LBT "is likely to run in nearly linear time in practice"
because real workloads have few concurrent writes.  This bench measures LBT
end to end (including witness construction, Figure 1's write slots / read
containers) on realistic closed-loop-client histories of increasing size, and
records the verdict plus the witness check so the timing is tied to a correct
answer.
"""

import pytest

from repro.algorithms.lbt import verify_2atomic, verify_2atomic_reference

from conftest import practical

SIZES = [1000, 2000, 4000, 8000]


@pytest.mark.parametrize("n", SIZES)
def test_lbt_practical_scaling(benchmark, n):
    """LBT runtime vs history size at fixed, small write concurrency."""
    history = practical(n)
    result = benchmark(verify_2atomic, history)
    assert result, "practical histories with <=1 staleness must be 2-atomic"
    assert result.check_witness(history)
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["max_concurrent_writes"] = history.max_concurrent_writes()
    benchmark.extra_info["verdict"] = bool(result)
    benchmark.extra_info["epochs"] = result.stats["epochs"]


@pytest.mark.parametrize("n", [1000, 2000])
def test_lbt_reference_practical(benchmark, n):
    """The literal Figure 2 transcription, for comparison with the fast variant."""
    history = practical(n)
    result = benchmark(verify_2atomic_reference, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
