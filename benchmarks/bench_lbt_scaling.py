"""Experiment E3: LBT's O(n log n + c·n) running time (Theorem 3.2).

Two sweeps isolate the two terms of the bound:

* fixed write concurrency ``c``, growing ``n`` — runtime should grow close to
  linearly (the quasilinear "practical" regime);
* fixed ``n``, growing ``c`` — runtime should grow with ``c`` (the ``c·n``
  term), which is the knob that degrades LBT to quadratic when ``c = Θ(n)``.

All inputs are 2-atomic concurrent-batch histories, so every measurement is a
complete (YES + witness) run rather than an early rejection.
"""

import pytest

from repro.algorithms.lbt import verify_2atomic

from conftest import batched

#: Fixed-concurrency sweep: (number of batches, batch size).
GROWING_N = [(25, 8), (50, 8), (100, 8), (200, 8), (400, 8)]
#: Fixed-size sweep (~2000 operations), growing concurrency.
GROWING_C = [2, 8, 32, 128, 512]


@pytest.mark.parametrize("num_batches,batch_size", GROWING_N)
def test_lbt_runtime_vs_n_fixed_c(benchmark, num_batches, batch_size):
    """Quasilinear regime: c fixed at 8 concurrent writes, n growing."""
    history = batched(num_batches, batch_size)
    result = benchmark(verify_2atomic, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["max_concurrent_writes"] = history.max_concurrent_writes()


@pytest.mark.parametrize("batch_size", GROWING_C)
def test_lbt_runtime_vs_c_fixed_n(benchmark, batch_size):
    """The c·n term: history size held near 2000 operations, c growing."""
    num_batches = max(1, 2048 // (batch_size + 1))
    history = batched(num_batches, batch_size)
    result = benchmark(verify_2atomic, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["max_concurrent_writes"] = history.max_concurrent_writes()
