"""Adaptive tiered verification: speedup, escalation rates, and parity.

The tier ladder (:mod:`repro.engine.tiering`) answers clean registers with
the cheapest sound rung (the GK screen at k'=1, exploiting k-monotonicity)
and escalates to the exact checker only where trigger features — anomalous
reads, value lag >= k, overlap density — say a NO is possible.  This
benchmark quantifies both sides of that bargain on a clean and a stale
workload arm, batch and streaming:

* **batch section** — exact-only vs. ``Engine(tier=...)`` wall-clock per
  tier policy, screen/escalation rates from the report's
  :class:`~repro.engine.tiering.TierStats`, a verdict+reason parity digest
  (identical across the exact and every tiered run or the ladder lied),
  and the calibrated :class:`~repro.engine.tiering.CostModel`'s mean fit
  error;
* **streaming section** — a tiered :class:`StreamingEngine` pass per arm,
  counting windows that rode the O(1) peek instead of the authoritative
  check (``windows_bypassed_exact`` — the "no silent caps" counter) and
  checking final verdicts against the untiered stream.

Run with::

    PYTHONPATH=src python benchmarks/bench_tiering.py [--registers 12]
        [--ops 400] [--window 32] [--json PATH] [--check]

``--check`` fails when any parity digest diverges from the exact run's,
when the clean arm's auto-tier escalation rate exceeds
``--check-max-clean-escalation``, when a stale register that the exact
oracle fails was never escalated, when the clean-arm tiered batch run is
not under ``--check-max-clean-frac`` of the exact wall-clock, or when the
clean streaming arm never bypassed a register-window.  CI runs a reduced
size.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.core.windows import WindowPolicy
from repro.engine import Engine, StreamingEngine
from repro.engine.tiering import CostModel, get_tier_policy
from repro.workloads.synthetic import synthetic_trace

SEED = 0xC0FFEE
K = 2
TIERS = ("screen", "auto")


def make_arms(registers, ops_per_register):
    """The two workload arms: screening heaven and escalation purgatory."""
    return {
        "clean": synthetic_trace(
            random.Random(SEED), registers, ops_per_register,
            staleness_probability=0.0,
        ),
        "stale": synthetic_trace(
            random.Random(SEED + 1), registers, ops_per_register,
            staleness_probability=0.15, max_staleness=2,
        ),
    }


def verdict_digest(report):
    """Order-independent digest of every (key, verdict, reason) triple.

    NOs only ever come from the exact rung, so reasons must match the
    exact-only run character for character; screened YES reasons name the
    rung that answered and are digested as plain booleans instead.
    """
    parts = []
    for key in sorted(report.results, key=repr):
        result = report.results[key]
        reason = result.reason if not result else ""
        parts.append(f"{key!r}={bool(result)}:{reason}")
    return hashlib.sha256(";".join(parts).encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Batch section
# ----------------------------------------------------------------------
def bench_batch(trace, out):
    t0 = time.perf_counter()
    exact = Engine().verify_trace(trace, K)
    exact_s = time.perf_counter() - t0
    record = {
        "exact_s": round(exact_s, 4),
        "digest": verdict_digest(exact),
        "tiers": {},
    }
    print(f"    exact    {exact_s:7.4f}s  digest {record['digest']}", file=out)
    for tier in TIERS:
        t0 = time.perf_counter()
        tiered = Engine(tier=tier).verify_trace(trace, K)
        elapsed = time.perf_counter() - t0
        stats = dict(tiered.tier_stats)
        rec = {
            "elapsed_s": round(elapsed, 4),
            "speedup": round(exact_s / elapsed, 2) if elapsed else None,
            "digest": verdict_digest(tiered),
            "screen_rate": stats.get("screen_rate", 0.0),
            "escalation_rate": stats.get("escalation_rate", 0.0),
        }
        record["tiers"][tier] = rec
        print(
            f"    {tier:8s} {elapsed:7.4f}s  {rec['speedup']:5.2f}x  "
            f"screen {rec['screen_rate']:.2f}  escalate "
            f"{rec['escalation_rate']:.2f}  digest {rec['digest']}",
            file=out,
        )
    # Escalation soundness observable: every exact-NO register escalated.
    auto = Engine(tier="auto").verify_trace(trace, K)
    record["unescalated_nos"] = sorted(
        repr(key)
        for key, result in auto.results.items()
        if not result and not auto.tier_decisions[key].escalated
    )
    return record


# ----------------------------------------------------------------------
# Streaming section
# ----------------------------------------------------------------------
def bench_stream(trace, window, out):
    ops = sorted(
        (op for key in trace.keys() for op in trace[key].operations),
        key=lambda op: (op.finish, op.op_id),
    )
    policy = WindowPolicy.count(window)
    exact = StreamingEngine(window=policy).verify_stream(ops, K)
    record = {"digest": verdict_digest(exact), "tiers": {}}
    for tier in TIERS:
        report = StreamingEngine(window=policy, tier=tier).verify_stream(ops, K)
        rec = {
            "digest": verdict_digest(report),
            "windows_bypassed_exact": report.windows_bypassed_exact,
            "register_windows_bypassed": report.register_windows_bypassed,
            "escalated_checks": report.escalated_checks,
        }
        record["tiers"][tier] = rec
        print(
            f"    {tier:8s} bypassed {rec['windows_bypassed_exact']:3d} windows "
            f"({rec['register_windows_bypassed']} register-windows), "
            f"{rec['escalated_checks']} escalations  digest {rec['digest']}",
            file=out,
        )
    return record


def run(registers, ops_per_register, window, json_path, check,
        check_max_clean_frac, check_max_clean_escalation, out=sys.stdout):
    arms = make_arms(registers, ops_per_register)
    print(
        f"tiering benchmark: {registers} registers x {ops_per_register} ops, "
        f"k={K}, window={window}",
        file=out,
    )
    model = CostModel.calibrate(
        {key: arms["clean"][key] for key in arms["clean"].keys()}
    )
    fit_error = (
        sum(model.fit_errors.values()) / len(model.fit_errors)
        if model.fit_errors
        else None
    )
    if fit_error is not None:
        print(f"  cost model: mean fit error {fit_error:.3f}", file=out)

    record = {
        "config": {
            "registers": registers, "ops_per_register": ops_per_register,
            "k": K, "window": window,
        },
        "fit_error": round(fit_error, 4) if fit_error is not None else None,
        "arms": {},
    }
    for arm, trace in arms.items():
        print(f"  {arm} arm (batch):", file=out)
        batch = bench_batch(trace, out)
        print(f"  {arm} arm (streaming):", file=out)
        stream = bench_stream(trace, window, out)
        record["arms"][arm] = {"batch": batch, "stream": stream}

    if json_path:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nrecorded results in {json_path}", file=out)

    if check:
        failures = []
        for arm, data in record["arms"].items():
            for section in ("batch", "stream"):
                expected = data[section]["digest"]
                for tier, rec in data[section]["tiers"].items():
                    if rec["digest"] != expected:
                        failures.append(
                            f"{arm}/{section}/tier={tier}: verdict digest "
                            f"{rec['digest']} != exact {expected} — the "
                            "ladder changed a verdict or a NO reason"
                        )
        clean_batch = record["arms"]["clean"]["batch"]
        auto_clean = clean_batch["tiers"]["auto"]
        if auto_clean["escalation_rate"] > check_max_clean_escalation:
            failures.append(
                f"clean-arm auto escalation rate "
                f"{auto_clean['escalation_rate']:.2f} exceeds "
                f"{check_max_clean_escalation:.2f} — the feature gate is "
                "escalating traces with nothing to escalate for"
            )
        frac = auto_clean["elapsed_s"] / clean_batch["exact_s"]
        if frac > check_max_clean_frac:
            failures.append(
                f"clean-arm tiered batch run is {frac:.2f}x the exact "
                f"wall-clock (ceiling {check_max_clean_frac:.2f}) — the "
                "screen is not earning its keep"
            )
        for arm in ("clean", "stale"):
            unescalated = record["arms"][arm]["batch"]["unescalated_nos"]
            if unescalated:
                failures.append(
                    f"{arm} arm: exact-NO registers never escalated: "
                    + ", ".join(unescalated)
                )
        # Whole-window bypasses need every register of a window to peek at
        # once, which dense multi-register windows rarely line up; the
        # per-register counter is the inertness gate.
        clean_stream_auto = record["arms"]["clean"]["stream"]["tiers"]["auto"]
        if clean_stream_auto["register_windows_bypassed"] == 0:
            failures.append(
                "clean streaming arm never bypassed a register-window — "
                "tiering is inert in the stream path"
            )
        print("", file=out)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=out)
            return record, 1
        print(
            f"CHECK OK: all verdict digests match exact, clean auto run at "
            f"{frac:.2f}x exact wall-clock with escalation rate "
            f"{auto_clean['escalation_rate']:.2f}, "
            f"{clean_stream_auto['register_windows_bypassed']} "
            "clean register-windows bypassed",
            file=out,
        )
    return record, 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--registers", type=int, default=12)
    parser.add_argument("--ops", type=int, default=400,
                        help="operations per register")
    parser.add_argument("--window", type=int, default=32,
                        help="streaming window size (count policy)")
    parser.add_argument("--json", default=None,
                        help="record results to this JSON path")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on digest divergence, clean-arm over-escalation, "
        "an unescalated exact-NO register, a clean tiered run slower than "
        "the ceiling, or an inert streaming tier",
    )
    parser.add_argument(
        "--check-max-clean-frac",
        type=float,
        default=0.9,
        dest="check_max_clean_frac",
        help="ceiling on tiered/exact wall-clock fraction for the clean "
        "batch arm (default 0.9)",
    )
    parser.add_argument(
        "--check-max-clean-escalation",
        type=float,
        default=0.25,
        dest="check_max_clean_escalation",
        help="ceiling on the clean arm's auto-tier escalation rate "
        "(default 0.25)",
    )
    args = parser.parse_args(argv)
    _, status = run(
        registers=args.registers,
        ops_per_register=args.ops,
        window=args.window,
        json_path=args.json,
        check=args.check,
        check_max_clean_frac=args.check_max_clean_frac,
        check_max_clean_escalation=args.check_max_clean_escalation,
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
