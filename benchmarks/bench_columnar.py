"""Columnar fast path vs object path: end-to-end verification speedups.

The columnar encoding (:mod:`repro.core.columnar`) exists to make the paper's
``O(n log n)`` bounds real in CPython; this benchmark measures how much it
buys end to end and doubles as a parity test:

* **single-register sweep** — ``verify(h, 1)`` (GK) followed by
  ``verify(h, 2)`` (FZF) on one practical history, over a range of trace
  sizes, on fresh history instances each repeat so the derived-structure
  cache cannot leak between paths.  Three tiers: the object path, the
  columnar (struct-of-arrays) kernels, and the vectorized numpy kernels fed
  straight from a memory-mapped ``.rcol`` file (load + GK + FZF, witnesses
  left undecoded — the engine's out-of-core configuration);
* **multi-register engine pass** — the serial engine over a synthetic trace,
  columnar vs object path;
* **ingestion** — trace file → per-register histories: the streaming
  object reader vs :func:`repro.io.formats.load_columnar` (records →
  columns, no ``Operation`` objects) vs lazy ``.rcol`` memory-mapping
  (:class:`repro.io.rcol.RcolFile` — a footer parse plus zero-copy views);
* **shard IPC payload** — pickled ``ShardTask`` object graphs vs the compact
  column codec the process executor ships (:mod:`repro.engine.codec`).

Every timed verdict is cross-checked between the paths (verdict, reason,
stats and witness validity), so a kernel divergence fails the run loudly.

Run with::

    PYTHONPATH=src python benchmarks/bench_columnar.py [--sizes 10000,30000,100000]
        [--registers N] [--repeat R] [--json PATH] [--check [--baseline PATH]]

``--check`` re-validates the recorded baseline invariants (parity, minimum
columnar and vectorized speedups, payload reduction) at whatever size was run
— CI runs it at a small size as a regression smoke test; the committed
reference numbers live in ``benchmarks/results/bench_columnar.json``.
"""

from __future__ import annotations

import argparse
import json
import pickle
import random
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.analysis.report import format_table
from repro.core import vector
from repro.core.api import verify
from repro.core.history import History
from repro.core.preprocess import normalize
from repro.engine import Engine
from repro.io.formats import dump_jsonl, load_columnar, load_trace
from repro.io.rcol import RcolFile, dump_rcol
from repro.workloads.synthetic import practical_history, synthetic_trace

DEFAULT_BASELINE = Path(__file__).parent / "results" / "bench_columnar.json"


def timed(fn, repeat):
    """Run ``fn`` ``repeat`` times; return (best seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def check_parity(history, res_obj, res_col, k):
    """Assert the two paths agree on verdict, reason, stats and witness."""
    assert bool(res_obj) == bool(res_col), (
        f"verdict divergence at k={k}: object={bool(res_obj)} columnar={bool(res_col)}"
    )
    assert res_obj.reason == res_col.reason, (
        f"reason divergence at k={k}: {res_obj.reason!r} != {res_col.reason!r}"
    )
    assert res_obj.stats == res_col.stats, (
        f"stats divergence at k={k}: {res_obj.stats!r} != {res_col.stats!r}"
    )
    for res in (res_obj, res_col):
        if res.witness is not None:
            assert history.is_k_atomic_total_order(res.witness, k), (
                f"invalid witness from {res.algorithm} at k={k}"
            )


def fresh(history):
    """A cache-free copy of ``history`` (same operations, empty derived cache)."""
    return History(history.operations, key=history.key)


def check_numpy_parity(col, obj_r1, obj_r2, np_r1, np_r2):
    """Assert the vectorized tier matches the object path on both verdicts.

    The timed vectorized runs leave witnesses undecoded, so witness validity
    is checked on a separate decoded (untimed) run against the decoded
    operations of the memory-mapped columns.
    """
    decoded = None
    for k, obj_r, np_r in ((1, obj_r1, np_r1), (2, obj_r2, np_r2)):
        assert bool(obj_r) == bool(np_r), (
            f"verdict divergence at k={k}: object={bool(obj_r)} numpy={bool(np_r)}"
        )
        assert obj_r.reason == np_r.reason, (
            f"reason divergence at k={k}: {obj_r.reason!r} != {np_r.reason!r}"
        )
        assert obj_r.stats == np_r.stats, (
            f"stats divergence at k={k}: {obj_r.stats!r} != {np_r.stats!r}"
        )
        dec = vector.verify_columnar(col, k, preprocess=False)
        if dec.witness is not None:
            if decoded is None:
                decoded = col.to_history()
            assert decoded.is_k_atomic_total_order(dec.witness, k), (
                f"invalid witness from {dec.algorithm} at k={k} (numpy kernel)"
            )


def bench_single_register(sizes, repeat, seed, out):
    """GK then FZF on one register: object vs columnar vs vectorized tiers."""
    rows = []
    records = []
    for n in sizes:
        rng = random.Random(seed)
        history = normalize(
            practical_history(rng, n, staleness_probability=0.05, max_staleness=1)
        )

        def run_pair(use_columnar):
            h = fresh(history)
            r1 = verify(h, 1, preprocess=False, columnar=use_columnar)
            r2 = verify(h, 2, preprocess=False, columnar=use_columnar)
            return r1, r2

        obj_s, (obj_r1, obj_r2) = timed(lambda: run_pair(False), repeat)
        col_s, (col_r1, col_r2) = timed(lambda: run_pair(True), repeat)
        check_parity(history, obj_r1, col_r1, 1)
        check_parity(history, obj_r2, col_r2, 2)
        speedup = obj_s / col_s if col_s > 0 else float("inf")
        np_s = np_speedup = np_vs_col = None
        if vector.NUMPY_AVAILABLE:
            # The vectorized tier is timed the way the out-of-core engine
            # runs it: memory-map the .rcol file, build columns lazily and
            # verify without decoding the YES witness back into Operation
            # objects.  The dump itself is one-time conversion cost and is
            # measured separately by bench_ingestion.
            with tempfile.TemporaryDirectory() as tmp:
                rcol_path = Path(tmp) / "trace.rcol"
                dump_rcol(history, rcol_path)

                def run_numpy_pair():
                    with RcolFile(rcol_path) as rf:
                        col = rf.load_columnar(history.key)
                        r1 = vector.verify_columnar(
                            col, 1, preprocess=False, decode_witness=False
                        )
                        r2 = vector.verify_columnar(
                            col, 2, preprocess=False, decode_witness=False
                        )
                    return r1, r2

                np_s, (np_r1, np_r2) = timed(run_numpy_pair, repeat)
                with RcolFile(rcol_path) as rf:
                    check_numpy_parity(
                        rf.load_columnar(history.key), obj_r1, obj_r2, np_r1, np_r2
                    )
            np_speedup = obj_s / np_s if np_s > 0 else float("inf")
            np_vs_col = col_s / np_s if np_s > 0 else float("inf")
        rows.append(
            [n, f"{obj_s:.3f}", f"{col_s:.3f}",
             "-" if np_s is None else f"{np_s:.3f}",
             f"{speedup:.2f}x",
             "-" if np_speedup is None else f"{np_speedup:.2f}x",
             "YES" if col_r2 else "NO"]
        )
        records.append(
            {
                "ops": n,
                "object_s": round(obj_s, 6),
                "columnar_s": round(col_s, 6),
                "numpy_s": None if np_s is None else round(np_s, 6),
                "speedup": round(speedup, 3),
                "numpy_speedup": (
                    None if np_speedup is None else round(np_speedup, 3)
                ),
                "numpy_vs_columnar": (
                    None if np_vs_col is None else round(np_vs_col, 3)
                ),
            }
        )
    print("single-register GK+FZF sweep (fresh caches per run):", file=out)
    print(
        format_table(
            ["ops", "object (s)", "columnar (s)", "numpy (s)", "col x",
             "numpy x", "2-atomic"],
            rows,
        ),
        file=out,
    )
    return records


def bench_engine(num_registers, ops_per_register, repeat, seed, out):
    """Serial engine over a multi-register trace, columnar vs object."""
    rng = random.Random(seed)
    trace = synthetic_trace(
        rng, num_registers, ops_per_register,
        staleness_probability=0.05, max_staleness=1, size_skew=1.0,
    )

    def run(use_columnar):
        rebuilt = synthetic_trace(
            random.Random(seed), num_registers, ops_per_register,
            staleness_probability=0.05, max_staleness=1, size_skew=1.0,
        )
        return Engine(columnar=use_columnar).verify_trace(rebuilt, 2)

    # Trace regeneration inside run() guarantees cache-free histories, so
    # time the verification via the report's own elapsed clock.
    _, obj_report = timed(lambda: run(False), repeat)
    _, col_report = timed(lambda: run(True), repeat)
    assert {k: bool(r) for k, r in obj_report.results.items()} == {
        k: bool(r) for k, r in col_report.results.items()
    }, "engine verdicts diverge between object and columnar paths"
    obj_s, col_s = obj_report.elapsed_s, col_report.elapsed_s
    print("", file=out)
    print(
        f"multi-register serial engine ({num_registers} registers, "
        f"{trace.total_operations()} ops, k=2): "
        f"object {obj_s:.3f}s vs columnar {col_s:.3f}s "
        f"({obj_s / col_s:.2f}x)",
        file=out,
    )
    return {
        "registers": num_registers,
        "total_ops": trace.total_operations(),
        "object_s": round(obj_s, 6),
        "columnar_s": round(col_s, 6),
        "speedup": round(obj_s / col_s, 3) if col_s else None,
    }


def bench_ingestion(num_registers, ops_per_register, repeat, seed, out):
    """Trace-file ingestion: object reader vs columnar decode vs .rcol memmap."""
    rng = random.Random(seed)
    trace = synthetic_trace(rng, num_registers, ops_per_register)
    rcol_s = None
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        count = dump_jsonl(trace, path)
        object_s, _ = timed(lambda: load_trace(path), repeat)
        columnar_s, cols = timed(lambda: load_columnar(path), repeat)
        if vector.NUMPY_AVAILABLE:
            rcol_path = Path(tmp) / "trace.rcol"
            dump_rcol(trace, rcol_path)

            def load_rcol():
                with RcolFile(rcol_path) as rf:
                    return {key: rf.load_columnar(key) for key in rf.keys()}

            rcol_s, rcols = timed(load_rcol, repeat)
            assert sum(c.n for c in rcols.values()) == count
    assert sum(c.n for c in cols.values()) == count
    print("", file=out)
    rcol_part = (
        ""
        if rcol_s is None
        else f" vs .rcol memmap {rcol_s:.3f}s ({object_s / rcol_s:.2f}x)"
    )
    print(
        f"trace ingestion ({count} ops): JSONL object reader {object_s:.3f}s vs "
        f"JSONL columnar decode {columnar_s:.3f}s "
        f"({object_s / columnar_s:.2f}x){rcol_part}",
        file=out,
    )
    return {
        "total_ops": count,
        "object_s": round(object_s, 6),
        "columnar_s": round(columnar_s, 6),
        "rcol_s": None if rcol_s is None else round(rcol_s, 6),
        "speedup": round(object_s / columnar_s, 3) if columnar_s else None,
        "rcol_speedup": (
            round(object_s / rcol_s, 3) if rcol_s else None
        ),
    }


def bench_ipc_payload(num_registers, ops_per_register, seed, out):
    """Shard payload bytes: pickled object graphs vs the column codec."""
    rng = random.Random(seed)
    trace = synthetic_trace(rng, num_registers, ops_per_register)
    engine = Engine(executor="processes", jobs=2)
    tasks = engine.plan(engine._as_register_histories(trace), 2)
    object_bytes = sum(len(pickle.dumps(t, pickle.HIGHEST_PROTOCOL)) for t in tasks)
    column_bytes = sum(
        len(pickle.dumps(t.encode(), pickle.HIGHEST_PROTOCOL)) for t in tasks
    )
    total_ops = trace.total_operations()
    print("", file=out)
    print(
        f"process-executor shard payload ({total_ops} ops): "
        f"pickled objects {object_bytes} B vs columns {column_bytes} B "
        f"({object_bytes / column_bytes:.2f}x smaller, "
        f"{column_bytes / total_ops:.1f} B/op)",
        file=out,
    )
    return {
        "total_ops": total_ops,
        "object_bytes": object_bytes,
        "column_bytes": column_bytes,
        "reduction": round(object_bytes / column_bytes, 3),
    }


def run(sizes, num_registers, ops_per_register, repeat, seed, json_path, check,
        check_min_speedup, check_min_numpy_speedup=None, out=sys.stdout):
    print(
        f"columnar benchmark: sizes={sizes}, engine trace "
        f"{num_registers}x{ops_per_register}, repeat={repeat}, seed={seed}",
        file=out,
    )
    print("", file=out)
    single = bench_single_register(sizes, repeat, seed, out)
    engine = bench_engine(num_registers, ops_per_register, repeat, seed, out)
    ingestion = bench_ingestion(num_registers, ops_per_register, repeat, seed, out)
    ipc = bench_ipc_payload(num_registers, ops_per_register, seed, out)

    record = {
        "config": {
            "sizes": list(sizes),
            "registers": num_registers,
            "ops_per_register": ops_per_register,
            "repeat": repeat,
            "seed": seed,
        },
        "single_register": single,
        "engine": engine,
        "ingestion": ingestion,
        "ipc_payload": ipc,
    }
    if json_path:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nrecorded results in {json_path}", file=out)

    if check:
        failures = []
        worst = min(entry["speedup"] for entry in single)
        largest = max(single, key=lambda entry: entry["ops"])
        if largest["speedup"] < check_min_speedup:
            failures.append(
                f"columnar GK+FZF speedup {largest['speedup']:.2f}x at "
                f"{largest['ops']} ops is below the required "
                f"{check_min_speedup:.2f}x"
            )
        numpy_note = "numpy tier unavailable (not checked)"
        if vector.NUMPY_AVAILABLE and check_min_numpy_speedup is not None:
            np_ratio = largest["numpy_vs_columnar"]
            if np_ratio is None or np_ratio < check_min_numpy_speedup:
                failures.append(
                    f"vectorized GK+FZF is {np_ratio}x the columnar kernels at "
                    f"{largest['ops']} ops, below the required "
                    f"{check_min_numpy_speedup:.2f}x"
                )
            else:
                numpy_note = (
                    f"vectorized tier {np_ratio:.2f}x over columnar"
                )
        if ipc["column_bytes"] >= ipc["object_bytes"]:
            failures.append(
                f"column payload {ipc['column_bytes']} B is not smaller than "
                f"pickled objects {ipc['object_bytes']} B"
            )
        print("", file=out)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=out)
            return record, 1
        print(
            f"CHECK OK: parity held, columnar speedup {largest['speedup']:.2f}x "
            f"at {largest['ops']} ops (worst across sizes {worst:.2f}x), "
            f"{numpy_note}, payload {ipc['reduction']:.2f}x smaller",
            file=out,
        )
    return record, 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="10000,30000,100000",
        help="comma-separated single-register trace sizes (default 10000,30000,100000)",
    )
    parser.add_argument("--registers", type=int, default=32)
    parser.add_argument("--ops", type=int, default=1500, help="operations per register")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", default=None, help="record results to this JSON path")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when parity breaks, the largest-size speedup drops "
        "below --check-min-speedup, or the column payload stops shrinking",
    )
    parser.add_argument(
        "--check-min-speedup",
        type=float,
        default=None,
        dest="check_min_speedup",
        help="minimum required GK+FZF speedup at the largest size "
        "(default: 2.0 at >=100k ops, 1.2 below — small sizes amortise "
        "the encoding less)",
    )
    parser.add_argument(
        "--check-min-numpy-speedup",
        type=float,
        default=None,
        dest="check_min_numpy_speedup",
        help="minimum required vectorized-over-columnar ratio at the largest "
        "size (default: 10.0 at >=100k ops, 2.0 below; skipped when numpy "
        "is unavailable)",
    )
    args = parser.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",") if s]
    min_speedup = args.check_min_speedup
    if min_speedup is None:
        min_speedup = 2.0 if max(sizes) >= 100_000 else 1.2
    min_numpy = args.check_min_numpy_speedup
    if min_numpy is None:
        min_numpy = 10.0 if max(sizes) >= 100_000 else 2.0
    _, status = run(
        sizes=sizes,
        num_registers=args.registers,
        ops_per_register=args.ops,
        repeat=args.repeat,
        seed=args.seed,
        json_path=args.json,
        check=args.check,
        check_min_speedup=min_speedup,
        check_min_numpy_speedup=min_numpy,
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
