"""Experiment E8: do sloppy-quorum stores provide 2-atomicity in practice?

The paper's concluding remarks pose exactly this question.  The benchmark runs
the bundled Dynamo-style simulator under several (N, R, W) configurations
(simulation excluded from the timed region), then times the k-atomicity audit
of the recorded histories and records, per configuration, which consistency
band the store actually delivered.  The qualitative expectation:

* strict quorums (R + W > N)  -> every register linearizable (k = 1);
* mildly sloppy (N=5, R=1, W=2) -> mostly k = 2;
* aggressive (N=5, R=1, W=1)  -> some registers need k >= 3.
"""

from functools import lru_cache

import pytest

from repro.analysis.spectrum import atomicity_spectrum
from repro.core.api import verify_trace
from repro.simulation import ExponentialLatency, QuorumConfig, SloppyQuorumStore, StoreConfig
from repro.workloads import WorkloadSpec, ZipfianKeys

CONFIGS = {
    "N3-R2-W2-strict": (3, 2, 2),
    "N5-R2-W2-sloppy": (5, 2, 2),
    "N5-R1-W2-sloppy": (5, 1, 2),
    "N5-R1-W1-sloppy": (5, 1, 1),
}


@lru_cache(maxsize=None)
def recorded_trace(name):
    """Run the simulator once per configuration and cache the trace."""
    n, r, w = CONFIGS[name]
    config = StoreConfig(
        quorum=QuorumConfig(num_replicas=n, read_quorum=r, write_quorum=w),
        latency=ExponentialLatency(mean_ms=3.0),
    )
    workload = WorkloadSpec(
        num_clients=16,
        operations_per_client=50,
        write_ratio=0.4,
        key_selector=ZipfianKeys(num_keys=4),
        mean_think_time_ms=2.0,
        seed=17,
    )
    return SloppyQuorumStore(config, seed=17).run(workload).history


@pytest.mark.parametrize("name", list(CONFIGS))
def test_audit_spectrum_per_configuration(benchmark, name):
    """Time the staleness-spectrum audit; record the consistency it found."""
    trace = recorded_trace(name)
    spectrum = benchmark(atomicity_spectrum, trace)
    benchmark.extra_info["configuration"] = name
    benchmark.extra_info["keys"] = spectrum.num_keys
    benchmark.extra_info["fraction_atomic"] = round(spectrum.fraction_atomic, 3)
    benchmark.extra_info["fraction_within_2"] = round(spectrum.fraction_within_2, 3)
    benchmark.extra_info["worst_bucket"] = spectrum.worst_bucket().value
    n, r, w = CONFIGS[name]
    if r + w > n:
        assert spectrum.fraction_atomic == 1.0, "strict quorums must stay linearizable"


@pytest.mark.parametrize("name", ["N3-R2-W2-strict", "N5-R1-W2-sloppy"])
def test_verify_trace_2atomicity(benchmark, name):
    """Time plain per-register 2-AV over a recorded trace (the FZF path)."""
    trace = recorded_trace(name)
    results = benchmark(verify_trace, trace, 2)
    benchmark.extra_info["configuration"] = name
    benchmark.extra_info["registers_2atomic"] = sum(bool(r) for r in results.values())
    benchmark.extra_info["registers_total"] = len(results)
