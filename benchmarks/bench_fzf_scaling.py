"""Experiment E6 (part 1): FZF's O(n log n) running time (Theorem 4.6).

The same two sweeps as the LBT bench (fixed concurrency / fixed size), plus
the practical-workload sweep, so the FZF and LBT numbers can be compared row
by row.  The expectation from the paper: FZF's runtime depends on ``n`` but
not on the write concurrency ``c``.
"""

import pytest

from repro.algorithms.fzf import verify_2atomic_fzf

from conftest import batched, practical

GROWING_N = [(25, 8), (50, 8), (100, 8), (200, 8), (400, 8)]
GROWING_C = [2, 8, 32, 128, 512]
PRACTICAL_SIZES = [1000, 2000, 4000, 8000]


@pytest.mark.parametrize("num_batches,batch_size", GROWING_N)
def test_fzf_runtime_vs_n_fixed_c(benchmark, num_batches, batch_size):
    """FZF runtime vs n at fixed write concurrency."""
    history = batched(num_batches, batch_size)
    result = benchmark(verify_2atomic_fzf, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["chunks"] = result.stats["chunks"]


@pytest.mark.parametrize("batch_size", GROWING_C)
def test_fzf_runtime_vs_c_fixed_n(benchmark, batch_size):
    """FZF runtime vs c at (roughly) fixed history size — should stay flat."""
    num_batches = max(1, 2048 // (batch_size + 1))
    history = batched(num_batches, batch_size)
    result = benchmark(verify_2atomic_fzf, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["max_concurrent_writes"] = history.max_concurrent_writes()


@pytest.mark.parametrize("n", PRACTICAL_SIZES)
def test_fzf_practical_scaling(benchmark, n):
    """FZF on the same practical histories as the LBT bench."""
    history = practical(n)
    result = benchmark(verify_2atomic_fzf, history)
    assert result
    benchmark.extra_info["operations"] = len(history)
    benchmark.extra_info["verdict"] = bool(result)
