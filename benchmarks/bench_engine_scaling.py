"""Engine scaling: sharded parallel verification vs the serial baseline.

The locality theorem (Section II-B) makes per-register verification
embarrassingly parallel; this benchmark measures how much of that parallelism
the engine actually harvests.  On a synthetic many-register trace (>= 64
registers by default) it times:

* the seed-style serial baseline (one ``verify`` call per register, in order),
* ``Engine(executor="serial")`` — measures engine overhead (should be ~1x),
* ``Engine(executor="threads")`` — GIL-bound for these pure-Python verifiers,
* ``Engine(executor="processes")`` — the multi-core path, swept over worker
  counts.

All verdicts are cross-checked against the baseline, so the benchmark doubles
as a parity test.  The process executor's speedup scales with the CPUs the
host actually grants (on a single-core box it can only break even minus
IPC overhead, and the report says so instead of pretending otherwise).

Run with::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py [--registers N]
        [--ops N] [--jobs a,b,c] [--skew S] [--repeat R]
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.analysis.report import format_table
from repro.core.api import verify
from repro.engine import Engine, default_jobs
from repro.workloads.synthetic import synthetic_trace


def serial_baseline(trace, k):
    """The seed-style loop: verify each register in trace order."""
    return {key: verify(trace[key], k) for key in trace.keys()}


def timed(fn, repeat):
    """Run ``fn`` ``repeat`` times; return (best seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run(num_registers=64, ops_per_register=600, k=2, jobs_sweep=None, skew=1.0, repeat=3):
    cpus = default_jobs()
    if jobs_sweep is None:
        jobs_sweep = sorted({2, max(2, cpus // 2), cpus} - {1})
    rng = random.Random(20130708)  # ICDCS'13 publication date as the seed
    print(
        f"building synthetic trace: {num_registers} registers x ~{ops_per_register} ops "
        f"(size skew {skew}), k={k}, {cpus} usable CPU(s)"
    )
    trace = synthetic_trace(
        rng, num_registers, ops_per_register, staleness_probability=0.08, size_skew=skew
    )
    total_ops = trace.total_operations()
    print(f"trace ready: {total_ops} operations\n")

    base_s, base_results = timed(lambda: serial_baseline(trace, k), repeat)
    base_verdicts = {key: bool(r) for key, r in base_results.items()}

    rows = [["baseline (seed loop)", 1, f"{base_s:.3f}", "1.00x", f"{total_ops / base_s:,.0f}"]]
    process_speedups = {}

    def bench(label, engine, jobs):
        elapsed, report = timed(lambda: engine.verify_trace(trace, k), repeat)
        if report.verdicts() != base_verdicts:
            raise AssertionError(f"{label}: verdicts diverge from the serial baseline")
        rows.append(
            [label, jobs, f"{elapsed:.3f}", f"{base_s / elapsed:.2f}x", f"{total_ops / elapsed:,.0f}"]
        )
        return base_s / elapsed

    bench("engine serial", Engine(executor="serial"), 1)
    bench("engine threads", Engine(executor="threads", jobs=min(4, max(2, cpus))), min(4, max(2, cpus)))
    for jobs in jobs_sweep:
        process_speedups[jobs] = bench(
            f"engine processes", Engine(executor="processes", jobs=jobs), jobs
        )

    print(format_table(["configuration", "jobs", "best s", "speedup", "ops/s"], rows))
    best_jobs, best_speedup = max(process_speedups.items(), key=lambda kv: kv[1])
    print(
        f"\nbest process-executor speedup: {best_speedup:.2f}x at jobs={best_jobs} "
        f"({cpus} usable CPU(s))"
    )
    if cpus > 1 and best_speedup <= 1.0:
        print("WARNING: multiple CPUs available but no speedup — investigate.")
        return 1
    if cpus == 1:
        print(
            "note: single-CPU host — process workers serialise on one core, so the "
            "achievable speedup is capped at ~1x; run on a multi-core host to see scaling."
        )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--registers", type=int, default=64)
    parser.add_argument("--ops", type=int, default=600, help="operations per register (approx)")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--jobs", default=None, help="comma-separated worker counts to sweep")
    parser.add_argument("--skew", type=float, default=1.0, help="register size skew")
    parser.add_argument("--repeat", type=int, default=3, help="timing repetitions (best-of)")
    args = parser.parse_args(argv)
    sweep = [int(j) for j in args.jobs.split(",")] if args.jobs else None
    return run(
        num_registers=args.registers,
        ops_per_register=args.ops,
        k=args.k,
        jobs_sweep=sweep,
        skew=args.skew,
        repeat=args.repeat,
    )


if __name__ == "__main__":
    sys.exit(main())
