"""Out-of-core verification: memory-mapped ``.rcol`` vs in-memory columns.

The ``.rcol`` backend exists so traces larger than RAM can be verified
without ever materialising them: the engine partitions registers by the
footer index alone, each shard memory-maps the file independently, builds
columns as zero-copy views and verifies with the vectorized kernels,
leaving YES witnesses undecoded.  This benchmark measures what that buys on
a multi-million-operation trace:

* **generate** — stream a synthetic sequential (1-atomic) trace straight to
  disk through :class:`repro.io.rcol.RcolWriter`, chunk by chunk, so the
  generator itself never holds more than one column chunk;
* **memmap arm** — ``Engine().verify_file(path, k)`` with one register per
  shard: every shard maps, verifies and unmaps its registers in turn, so
  peak RSS is bounded by the largest register, not the trace;
* **in-memory arm** — the counterfactual: copy every register's columns off
  the memmap into RAM (and decode every value table) first, then verify the
  same kernels over the resident arrays.

Each arm runs in its own subprocess and reports wall time, throughput and
``ru_maxrss`` so the peak-RSS comparison is honest — the arms share nothing,
not even numpy's allocator state.

Run with::

    PYTHONPATH=src python benchmarks/bench_outofcore.py [--registers 16]
        [--ops 640000] [--k 1] [--json PATH] [--check]

The default 16x640000 trace is ~10.2M operations.  ``--check`` fails when
either arm returns a wrong verdict, or (at >= 1M operations) when the
memmap arm's peak RSS is not under ``--check-max-rss-frac`` of the
in-memory arm's.  CI runs a reduced size as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    # Allow running as a plain script without an installed package.
    _src = Path(__file__).resolve().parents[1] / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.core import vector

CHUNK_ROWS = 262_144
WRITE_EVERY = 8


def write_synthetic_rcol(path, num_registers, ops_per_register, seed):
    """Stream a sequential 1-atomic multi-register trace to ``path``.

    Each register is a non-overlapping sequence of operations where every
    ``WRITE_EVERY``-th operation (starting with the first) is a write and
    every read returns the latest written value — trivially k-atomic for
    every k, so both arms must answer YES everywhere.
    """
    import numpy as np

    from repro.io.rcol import RcolWriter

    rng = np.random.default_rng(seed)
    with RcolWriter(path) as writer:
        for r in range(num_registers):
            n = ops_per_register
            writer.begin_register(f"reg{r:03d}")
            idx = np.arange(n, dtype=np.int64)
            is_write = (idx % WRITE_EVERY == 0).astype(np.uint8)
            value_id = (np.cumsum(is_write) - 1).astype(np.int32)
            writer.add_values(range(int(value_id[-1]) + 1))
            start = idx.astype(np.float64)
            finish = start + rng.uniform(0.3, 0.9, size=n)
            for lo in range(0, n, CHUNK_ROWS):
                hi = min(lo + CHUNK_ROWS, n)
                writer.append_chunk(
                    start[lo:hi], finish[lo:hi], is_write[lo:hi], value_id[lo:hi]
                )
            writer.end_register()
    return num_registers * ops_per_register


# ----------------------------------------------------------------------
# Subprocess arms (invoked via --arm; print a JSON record on stdout)
# ----------------------------------------------------------------------
def arm_memmap(path, k, num_registers):
    """Lazy engine pass: one register per shard, witnesses undecoded."""
    from repro.engine import Engine

    engine = Engine(shards_per_job=max(2, num_registers))
    t0 = time.perf_counter()
    report = engine.verify_file(path, k)
    elapsed = time.perf_counter() - t0
    return elapsed, all(bool(res) for res in report.results.values())


def arm_inmemory(path, k, num_registers):
    """Counterfactual: materialise every register in RAM, then verify."""
    import numpy as np

    from repro.io.rcol import RcolFile

    t0 = time.perf_counter()
    cols = []
    with RcolFile(path) as rf:
        for key in rf.keys():
            lazy = rf.load_columnar(key)
            cols.append(
                vector.columnar_from_numpy(
                    key=lazy.key,
                    start=np.array(lazy.start),
                    finish=np.array(lazy.finish),
                    is_write=np.array(lazy.is_write),
                    value_id=np.array(lazy.value_id),
                    values=list(lazy.values),
                    op_ids=np.array(lazy.op_ids),
                    weights=np.array(lazy.weights),
                    has_key=bool(lazy.n == 0 or lazy.has_key[0]),
                )
            )
    ok = True
    for col in cols:
        res = vector.verify_columnar(
            col, k, preprocess=False, decode_witness=False
        )
        ok = ok and bool(res)
    return time.perf_counter() - t0, ok


def run_arm(arm, path, k, num_registers):
    elapsed, ok = (arm_memmap if arm == "memmap" else arm_inmemory)(
        path, k, num_registers
    )
    import resource

    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {"elapsed_s": elapsed, "ok": ok, "peak_rss_kb": int(peak_kb)}


def spawn_arm(arm, path, k, num_registers):
    """Run one arm in a fresh interpreter; return its JSON record."""
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--arm",
            arm,
            "--trace",
            str(path),
            "--k",
            str(k),
            "--registers",
            str(num_registers),
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{arm} arm failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def run(num_registers, ops_per_register, k, seed, json_path, check,
        check_max_rss_frac, trace_path=None, out=sys.stdout):
    if not vector.NUMPY_AVAILABLE:
        print(
            "numpy is unavailable; the out-of-core benchmark needs the "
            "vectorized tier and the .rcol backend — skipping.",
            file=out,
        )
        return None, 0

    total = num_registers * ops_per_register
    with tempfile.TemporaryDirectory() as tmp:
        if trace_path is None:
            path = Path(tmp) / "trace.rcol"
            t0 = time.perf_counter()
            write_synthetic_rcol(path, num_registers, ops_per_register, seed)
            gen_s = time.perf_counter() - t0
        else:
            path = Path(trace_path)
            gen_s = None
        size_mb = path.stat().st_size / 1e6
        gen_part = "" if gen_s is None else f", streamed to disk in {gen_s:.2f}s"
        print(
            f"out-of-core benchmark: {num_registers} registers x "
            f"{ops_per_register} ops = {total} operations, k={k} "
            f"({size_mb:.1f} MB .rcol{gen_part})",
            file=out,
        )
        arms = {}
        for arm in ("memmap", "inmemory"):
            arms[arm] = spawn_arm(arm, path, k, num_registers)

    for arm, rec in arms.items():
        rec["ops_per_s"] = round(total / rec["elapsed_s"]) if rec["elapsed_s"] else None
        print(
            f"  {arm:9s} verify: {rec['elapsed_s']:.3f}s "
            f"({rec['ops_per_s']} ops/s), peak RSS "
            f"{rec['peak_rss_kb'] / 1024:.1f} MB, "
            f"verdicts {'OK' if rec['ok'] else 'WRONG'}",
            file=out,
        )
    rss_frac = arms["memmap"]["peak_rss_kb"] / arms["inmemory"]["peak_rss_kb"]
    print(
        f"  memmap peak RSS is {rss_frac:.2f}x the in-memory arm's",
        file=out,
    )

    record = {
        "config": {
            "registers": num_registers,
            "ops_per_register": ops_per_register,
            "total_ops": total,
            "k": k,
            "seed": seed,
        },
        "trace_mb": round(size_mb, 3),
        "generate_s": None if gen_s is None else round(gen_s, 3),
        "memmap": arms["memmap"],
        "inmemory": arms["inmemory"],
        "rss_fraction": round(rss_frac, 4),
    }
    if json_path:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nrecorded results in {json_path}", file=out)

    if check:
        failures = []
        for arm, rec in arms.items():
            if not rec["ok"]:
                failures.append(f"{arm} arm returned a wrong verdict")
        if total >= 1_000_000 and rss_frac >= check_max_rss_frac:
            failures.append(
                f"memmap peak RSS fraction {rss_frac:.2f} is not under "
                f"{check_max_rss_frac:.2f} of the in-memory arm at "
                f"{total} ops — lazy ingestion is not bounding memory"
            )
        print("", file=out)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=out)
            return record, 1
        print(
            f"CHECK OK: verdicts correct in both arms, memmap peak RSS "
            f"{arms['memmap']['peak_rss_kb'] / 1024:.1f} MB "
            f"({rss_frac:.2f}x in-memory)",
            file=out,
        )
    return record, 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--registers", type=int, default=16)
    parser.add_argument(
        "--ops", type=int, default=640_000, help="operations per register"
    )
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", default=None, help="record results to this JSON path")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on a wrong verdict, or (at >= 1M ops) when the "
        "memmap arm's peak RSS is not under --check-max-rss-frac of the "
        "in-memory arm's",
    )
    parser.add_argument(
        "--check-max-rss-frac",
        type=float,
        default=0.75,
        dest="check_max_rss_frac",
        help="maximum allowed memmap/in-memory peak-RSS fraction (default 0.75)",
    )
    parser.add_argument(
        "--trace", default=None, help="reuse an existing .rcol trace file"
    )
    parser.add_argument("--arm", choices=("memmap", "inmemory"), default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.arm:
        # Subprocess mode: run one arm and print its JSON record.
        print(json.dumps(run_arm(args.arm, args.trace, args.k, args.registers)))
        return 0
    _, status = run(
        num_registers=args.registers,
        ops_per_register=args.ops,
        k=args.k,
        seed=args.seed,
        json_path=args.json,
        check=args.check,
        check_max_rss_frac=args.check_max_rss_frac,
        trace_path=args.trace,
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
